package report

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

// serialReference reproduces the pre-scheduler serial path of one
// campaign: its own golden run, the same deterministic mask population,
// and one boot-run per mask in order — no memoization, no shared queue.
func serialReference(t *testing.T, tool, bench, structure string, opt Options) *core.CampaignResult {
	t.Helper()
	w, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := sims.Factory(tool, w)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		t.Fatal(err)
	}
	golden.Benchmark = bench
	golden.Structure = structure
	sim := factory()
	arr, ok := sim.Structures()[structure]
	if !ok {
		t.Fatalf("%s has no structure %q", tool, structure)
	}
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles, Model: fault.ModelTransient,
		Count: opt.injections(), Seed: seedFor(opt.Seed, 0, bench, tool+structure),
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.LiveOnly {
		twin := factory()
		if res := twin.Run(1 << 62); res.Status != core.RunCompleted {
			t.Fatalf("twin probe: %v", res.Status)
		}
		tarr := twin.Structures()[structure]
		var live []int
		for e := 0; e < tarr.Entries(); e++ {
			if tarr.EntryValid(e) {
				live = append(live, e)
			}
		}
		if len(live) == 0 {
			t.Fatalf("no live entries in %s", structure)
		}
		for i := range masks {
			for j := range masks[i].Sites {
				masks[i].Sites[j].Entry = live[masks[i].Sites[j].Entry%len(live)]
			}
		}
	}
	res := &core.CampaignResult{Golden: golden}
	for _, m := range masks {
		rec, err := core.RunOne(factory, m, golden, 3, true)
		if err != nil {
			t.Fatal(err)
		}
		res.Records = append(res.Records, rec)
	}
	return res
}

// The scheduler-driven figure path must be byte-identical to the serial
// pre-scheduler path for a fixed seed: same per-mask records, same
// breakdowns, same golden cells.
func TestRunFiguresMatchesSerialReference(t *testing.T) {
	opt := Options{
		Injections: 8,
		Seed:       7,
		Benchmarks: []string{"qsort"},
		Workers:    4,
	}
	spec := Figures[4] // Fig 6: lsq.data
	cache := core.NewGoldenCache()
	opt.GoldenCache = cache
	fd, err := RunFigure(spec, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range opt.tools() {
		want := serialReference(t, tool, "qsort", spec.Structure, opt)
		// Per-mask records through the scheduler path.
		res, err := RunCampaignFor(tool, "qsort", spec.Structure, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Records, want.Records) {
			t.Fatalf("%s: scheduler records differ from serial reference:\n%+v\nvs\n%+v",
				tool, res.Records, want.Records)
		}
		if !reflect.DeepEqual(res.Golden, want.Golden) {
			t.Fatalf("%s: golden differs: %+v vs %+v", tool, res.Golden, want.Golden)
		}
		// Figure cells.
		cell, ok := fd.CellFor("qsort", tool)
		if !ok {
			t.Fatalf("missing cell for %s", tool)
		}
		if !reflect.DeepEqual(cell.Breakdown, opt.Parser.ParseAll(want.Records)) {
			t.Fatalf("%s: cell breakdown differs from serial reference", tool)
		}
		if !reflect.DeepEqual(cell.Golden, want.Golden) {
			t.Fatalf("%s: cell golden differs: %+v vs %+v", tool, cell.Golden, want.Golden)
		}
	}
	// One golden simulation per {tool, benchmark} row for the whole
	// matrix — the serial path performed two per structure campaign.
	if got, want := cache.Runs(), len(opt.tools()); got != want {
		t.Fatalf("golden runs = %d, want exactly %d (one per row)", got, want)
	}
}

// A two-figure matrix over the same rows must still run each row's
// golden exactly once, and produce the same figures as figure-at-a-time
// runs.
func TestRunFiguresSharesGoldensAcrossFigures(t *testing.T) {
	opt := Options{
		Injections: 5,
		Seed:       3,
		Benchmarks: []string{"qsort"},
		Tools:      []string{sims.MaFINX86, sims.GeFINARM},
		Workers:    4,
	}
	specs := []FigureSpec{Figures[0], Figures[4]} // rf.int and lsq.data
	cache := core.NewGoldenCache()
	opt.GoldenCache = cache
	fds, err := RunFigures(specs, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) != 2 {
		t.Fatalf("figures %d, want 2", len(fds))
	}
	if got, want := cache.Runs(), 2; got != want {
		t.Fatalf("golden runs = %d, want %d (2 rows, shared across 2 figures)", got, want)
	}
	for i, spec := range specs {
		solo, err := RunFigure(spec, Options{
			Injections: 5, Seed: 3, Benchmarks: opt.Benchmarks,
			Tools: opt.Tools, Workers: 1,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fds[i].Cells, solo.Cells) {
			t.Fatalf("fig %d: matrix cells differ from solo run:\n%+v\nvs\n%+v",
				spec.ID, fds[i].Cells, solo.Cells)
		}
	}
}

// The memoized LiveOnly probe must reproduce the twin-replay population
// and records exactly.
func TestLiveOnlyMatchesTwinProbeReference(t *testing.T) {
	opt := Options{
		Injections: 6,
		Seed:       2,
		Benchmarks: []string{"qsort"},
		Tools:      []string{sims.GeFINX86},
		Workers:    2,
		LiveOnly:   true,
	}
	want := serialReference(t, sims.GeFINX86, "qsort", "l2.data", opt)
	res, err := RunCampaignFor(sims.GeFINX86, "qsort", "l2.data", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want.Records) {
		t.Fatalf("LiveOnly scheduler records differ from twin-probe reference:\n%+v\nvs\n%+v",
			res.Records, want.Records)
	}
}
