package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
)

// LoadFigure rebuilds a figure's dataset from a logs repository instead
// of re-running the campaigns — the same separation the paper's parser
// exploits: classification is re-runnable offline.
func LoadFigure(logs *core.LogsRepo, spec FigureSpec, opt Options) (*FigureData, error) {
	fd := &FigureData{Spec: spec}
	for _, bench := range opt.benchmarks() {
		for _, tool := range opt.tools() {
			key := fault.CampaignKey(tool, bench, spec.Structure)
			res, err := logs.Load(key)
			if err != nil {
				return nil, fmt.Errorf("report: figure %d needs campaign %s: %w", spec.ID, key, err)
			}
			fd.Cells = append(fd.Cells, Cell{
				Tool: tool, Benchmark: bench,
				Breakdown: opt.Parser.ParseAll(res.Records),
				Golden:    res.Golden,
				Adaptive:  res.Adaptive,
			})
		}
	}
	return fd, nil
}

// RenderDifferentialSummary prints the paper's §IV.C headline
// comparison: for every structure, the average-vulnerability gap between
// the two x86 injectors versus the gap between the two ISAs on GeFIN.
// The paper's finding is that the same-ISA cross-simulator differences
// exceed the cross-ISA same-simulator differences.
func RenderDifferentialSummary(w io.Writer, figs []*FigureData) {
	fmt.Fprintln(w, "Differential summary (average vulnerability, percentage points)")
	fmt.Fprintf(w, "  %-38s %8s %8s %8s %12s %12s\n",
		"structure", "M-x86", "G-x86", "G-ARM", "|Mx86-Gx86|", "|Gx86-GARM|")
	var sumTools, sumISAs float64
	n := 0
	vulnOf := func(b core.Breakdown) float64 {
		if b.Weighted() {
			return b.WeightedVulnerability()
		}
		return b.Vulnerability()
	}
	for _, fd := range figs {
		m := vulnOf(fd.Average(sims.MaFINX86))
		gx := vulnOf(fd.Average(sims.GeFINX86))
		ga := vulnOf(fd.Average(sims.GeFINARM))
		dTools := math.Abs(m - gx)
		dISAs := math.Abs(gx - ga)
		sumTools += dTools
		sumISAs += dISAs
		n++
		fmt.Fprintf(w, "  Fig %d %-32s %8.2f %8.2f %8.2f %12.2f %12.2f\n",
			fd.Spec.ID, fd.Spec.Title, m, gx, ga, dTools, dISAs)
	}
	if n > 0 {
		fmt.Fprintf(w, "  %-38s %26s %12.2f %12.2f\n", "mean gap", "", sumTools/float64(n), sumISAs/float64(n))
		if sumTools > sumISAs {
			fmt.Fprintln(w, "  → same-ISA cross-simulator differences exceed cross-ISA differences,")
			fmt.Fprintln(w, "    the paper's central conclusion (§VI).")
		} else {
			fmt.Fprintln(w, "  → cross-ISA differences dominate on this sample (the paper's x86-pair")
			fmt.Fprintln(w, "    gap was larger; see EXPERIMENTS.md for the discussion).")
		}
	}
}

// WriteCSV emits the figure as a machine-readable CSV: one row per
// (benchmark, tool) plus the averages, with raw counts and percentages
// for every class.
func (fd *FigureData) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "structure", "benchmark", "tool", "injections"}
	for _, c := range core.Classes {
		header = append(header, string(c), string(c)+"_pct")
	}
	header = append(header, "vulnerability_pct")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := func(bench, tool string, b core.Breakdown) []string {
		rec := []string{
			fmt.Sprint(fd.Spec.ID), fd.Spec.Structure, bench, sims.ShortLabel(tool),
			fmt.Sprint(b.Total),
		}
		for _, c := range core.Classes {
			rec = append(rec, fmt.Sprint(b.Counts[c]), fmt.Sprintf("%.4f", b.Pct(c)))
		}
		return append(rec, fmt.Sprintf("%.4f", b.Vulnerability()))
	}
	for _, bench := range fd.Benchmarks() {
		for _, tool := range fd.Tools() {
			if c, ok := fd.CellFor(bench, tool); ok {
				if err := cw.Write(row(bench, tool, c.Breakdown)); err != nil {
					return err
				}
			}
		}
	}
	for _, tool := range fd.Tools() {
		if err := cw.Write(row("AVERAGE", tool, fd.Average(tool))); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderDominantClasses prints, per figure and tool, the dominant
// non-masked class — the paper's Remark 4 (SDC dominates L1D) and
// Remark 8 (Assert dominates MaFIN's L1I, Crash dominates GeFIN's).
func RenderDominantClasses(w io.Writer, figs []*FigureData) {
	fmt.Fprintln(w, "Dominant non-masked class per structure and tool")
	for _, fd := range figs {
		fmt.Fprintf(w, "  Fig %d %-32s", fd.Spec.ID, fd.Spec.Title)
		for _, tool := range fd.Tools() {
			b := fd.Average(tool)
			// Weight mass equals the raw count on uniform campaigns and
			// the unbiased population share on importance-sampled ones.
			best := core.ClassSDC
			bestN := -1.0
			for _, c := range core.Classes {
				if c == core.ClassMasked {
					continue
				}
				if b.Weights[c] > bestN {
					best, bestN = c, b.Weights[c]
				}
			}
			fmt.Fprintf(w, "  %s:%-8s", sims.ShortLabel(tool), string(best))
		}
		fmt.Fprintln(w)
	}
}
