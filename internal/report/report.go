// Package report is the reproduction harness for the paper's evaluation
// (§IV): it drives full differential injection campaigns across the
// three tool configurations and the ten benchmarks, reproduces the data
// behind Figures 2–6 (faulty-behaviour classification per structure),
// the §IV.A statistical-sampling numbers, Tables II–IV, and the runtime
// statistics backing Remarks 1–11.
package report

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bitarray"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// FigureSpec identifies one of the paper's classification figures.
type FigureSpec struct {
	ID        int
	Structure string
	Title     string
}

// Figures lists the five reproduced figures in paper order.
var Figures = []FigureSpec{
	{2, "rf.int", "Integer physical register file"},
	{3, "l1d.data", "L1D cache (data arrays)"},
	{4, "l1i.data", "L1I cache (instruction arrays)"},
	{5, "l2.data", "L2 cache (data arrays)"},
	{6, "lsq.data", "Load/Store Queue (data field)"},
}

// FigureByID looks a figure spec up.
func FigureByID(id int) (FigureSpec, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("report: no figure %d (have 2-6)", id)
}

// Options parameterize a reproduction run.
type Options struct {
	// Injections is the number of faults per {tool, benchmark,
	// structure} campaign; the paper uses 2000 (2.88% margin at 99%
	// confidence). Smaller values trade accuracy for time exactly as
	// §IV.A describes.
	Injections int
	// Seed drives mask generation; campaigns are fully reproducible.
	Seed int64
	// Benchmarks restricts the benchmark set (default: all ten).
	Benchmarks []string
	// Tools restricts the tool set (default: all three).
	Tools []string
	// Workers is the campaign worker-pool size.
	Workers int
	// Logs, when non-nil, persists every campaign to the repository.
	Logs *core.LogsRepo
	// Parser configures the classification.
	Parser core.Parser
	// LiveOnly restricts the fault population to entries that hold live
	// data at the end of the golden run — the conditional-vulnerability
	// view that factors out dead capacity. At the paper's input scale
	// the two views converge (their caches are full of live data); at
	// this reproduction's reduced scale LiveOnly recovers the
	// large-structure comparisons (L2, Fig. 5) that uniform sampling
	// over mostly-dead arrays cannot resolve.
	LiveOnly bool
	// UseCheckpoint shares each {tool, benchmark} row's fault-free
	// prefix across its campaigns via a drained-machine checkpoint (see
	// core.CampaignSpec.UseCheckpoint for the outcome caveat).
	UseCheckpoint bool
	// Prune enables golden-run liveness pruning (see
	// core.MatrixOptions.Prune).
	Prune bool
	// PruneVerify simulates up to this many pruned masks per campaign and
	// fails on a class mismatch; implies Prune.
	PruneVerify int
	// CheckpointLadder captures this many evenly spaced restore points per
	// {tool, benchmark} row instead of the single legacy checkpoint
	// (effective with UseCheckpoint, values >= 2).
	CheckpointLadder int
	// Model is the generated fault model; empty means transient (the
	// paper's primary model).
	Model string
	// TimeoutFactor multiplies the fault-free cycle count to form the
	// per-run cycle limit; 0 means the paper's 3.
	TimeoutFactor uint64
	// DisableEarlyStop turns off the §III.B optimizations (ablation).
	DisableEarlyStop bool
	// RunWallLimit bounds the host wall-clock time of a single run; 0 is
	// off.
	RunWallLimit time.Duration
	// StopMargin, when positive, arms the sequential-confidence stopping
	// rule on every campaign cell (see core.MatrixOptions.StopMargin);
	// StopConfidence and StopCheckEvery qualify it.
	StopMargin     float64
	StopConfidence float64
	StopCheckEvery int
	// ImportanceSampling draws masks preferentially from live fault
	// sites of the golden liveness profile, with Horvitz-Thompson
	// weights keeping the reported proportions unbiased.
	ImportanceSampling bool
	// Exhaustive replaces sampling with the equivalence-class-collapsed
	// census of the single-bit transient population (implies Prune).
	Exhaustive bool
	// GoldenCache, when non-nil, memoizes golden runs across report
	// calls; by default each RunFigures/RunCampaignFor call uses a
	// private cache.
	GoldenCache *core.GoldenCache
	// Telemetry, when non-nil, aggregates scheduler events across report
	// calls (live metrics snapshots, trace sinks). When nil and a
	// progress writer is passed, RunFigures uses a private collector to
	// drive the periodic progress lines.
	Telemetry *telemetry.Collector
	// ProgressEvery sets the period of the progress reporter lines
	// written to the progress writer (default 5s).
	ProgressEvery time.Duration
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

func (o Options) tools() []string {
	if len(o.Tools) > 0 {
		return o.Tools
	}
	return sims.Tools()
}

func (o Options) injections() int {
	if o.Injections > 0 {
		return o.Injections
	}
	return 200
}

func (o Options) goldenCache() *core.GoldenCache {
	if o.GoldenCache != nil {
		return o.GoldenCache
	}
	return core.NewGoldenCache()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) model() fault.Model {
	if o.Model == "" {
		return fault.ModelTransient
	}
	return fault.Model(o.Model)
}

func (o Options) timeoutFactor() uint64 {
	if o.TimeoutFactor > 0 {
		return o.TimeoutFactor
	}
	return 3
}

func (o Options) matrixOptions(cache *core.GoldenCache, collector *telemetry.Collector) core.MatrixOptions {
	return core.MatrixOptions{
		Workers: o.Workers, Golden: cache, Telemetry: collector,
		Prune: o.Prune || o.Exhaustive, PruneVerify: o.PruneVerify, CheckpointLadder: o.CheckpointLadder,
		RunWallLimit: o.RunWallLimit,
		StopMargin:   o.StopMargin, StopConfidence: o.StopConfidence, StopCheckEvery: o.StopCheckEvery,
	}
}

// OptionsFromConfig maps the shared knobs of a core.CampaignConfig —
// the consolidated campaign API the CLIs bind their flags onto — into
// report Options. The config's cells are ignored: the report package
// derives its own campaign matrix from figure specs.
func OptionsFromConfig(cfg core.CampaignConfig) Options {
	return Options{
		Injections:         cfg.Injections,
		Seed:               cfg.Seed,
		Workers:            cfg.Workers,
		LiveOnly:           cfg.LiveOnly,
		UseCheckpoint:      cfg.UseCheckpoint,
		Prune:              cfg.Prune,
		PruneVerify:        cfg.PruneVerify,
		CheckpointLadder:   cfg.CheckpointLadder,
		Model:              cfg.Model,
		TimeoutFactor:      cfg.TimeoutFactor,
		DisableEarlyStop:   cfg.DisableEarlyStop,
		RunWallLimit:       cfg.RunWallLimit,
		StopMargin:         cfg.StopMargin,
		StopConfidence:     cfg.StopConfidence,
		StopCheckEvery:     cfg.StopCheckEvery,
		ImportanceSampling: cfg.ImportanceSampling,
		Exhaustive:         cfg.Exhaustive,
	}
}

// Cell is one campaign of a figure: one bar of the paper's charts.
type Cell struct {
	Tool      string
	Benchmark string
	Breakdown core.Breakdown
	Golden    core.GoldenInfo
	// Adaptive carries the cell's adaptive-control outcome (early stop,
	// census completion, achieved margin) when the campaign ran under
	// one; nil for fixed-budget campaigns.
	Adaptive *core.AdaptiveInfo
}

// FigureData is the full dataset of one figure.
type FigureData struct {
	Spec  FigureSpec
	Cells []Cell // benchmark-major, tool-minor order
}

// seedFor derives a deterministic per-campaign seed.
func seedFor(base int64, fig int, bench, tool string) int64 {
	h := uint64(base) * 1099511628211
	mix := func(s string) {
		for _, c := range s {
			h = (h ^ uint64(c)) * 1099511628211
		}
	}
	h ^= uint64(fig) << 32
	mix(bench)
	mix(tool)
	return int64(h & (1<<62 - 1))
}

// campaignSpecFor builds the scheduler spec of one {tool, benchmark,
// structure} campaign: golden reference and structure geometry come from
// the memoized golden run of the row, the masks from the deterministic
// per-campaign seed.
func campaignSpecFor(tool, bench, structure string, opt Options, cache *core.GoldenCache) (core.CampaignSpec, error) {
	w, err := workload.ByName(bench)
	if err != nil {
		return core.CampaignSpec{}, err
	}
	factory, err := sims.Factory(tool, w)
	if err != nil {
		return core.CampaignSpec{}, err
	}
	golden, err := cache.Golden(tool, bench, factory)
	if err != nil {
		return core.CampaignSpec{}, fmt.Errorf("report: golden %s/%s: %w", tool, bench, err)
	}
	entries, bits, ok, err := cache.Geometry(tool, bench, factory, structure)
	if err != nil {
		return core.CampaignSpec{}, err
	}
	if !ok {
		return core.CampaignSpec{}, fmt.Errorf("report: %s has no structure %q", tool, structure)
	}
	genSpec := fault.GeneratorSpec{
		Structure: structure, Entries: entries, BitsPerEntry: bits,
		MaxCycle: golden.Cycles, Model: opt.model(),
		Count: opt.injections(), Seed: seedFor(opt.Seed, 0, bench, tool+structure),
	}
	var masks []fault.Mask
	switch {
	case opt.Exhaustive, opt.ImportanceSampling:
		// Both profile-driven generators read the boot liveness profile
		// of the cell's structure — the same profile the pruner derives
		// its plan from, so the equivalence classes agree by
		// construction.
		profs, perr := cache.Profiles(tool, bench, factory, nil, []string{structure})
		if perr != nil {
			return core.CampaignSpec{}, perr
		}
		var prof *bitarray.Profile
		if len(profs) > 0 {
			prof = profs[0][structure]
		}
		if prof == nil {
			return core.CampaignSpec{}, fmt.Errorf("report: %s/%s exposes no liveness profile for %s (simulator has no cycle source)",
				tool, bench, structure)
		}
		if opt.Exhaustive {
			masks, err = fault.EnumerateExhaustive(genSpec, prof)
		} else {
			masks, err = fault.GenerateImportance(genSpec, prof, 0)
		}
	default:
		masks, err = fault.Generate(genSpec)
	}
	if err != nil {
		return core.CampaignSpec{}, err
	}
	if opt.LiveOnly {
		// Remap every mask entry onto the set of entries holding live
		// data at the end of the golden run, probed on the memoized
		// golden machine instead of a fresh twin replay.
		live, err := cache.LiveEntries(tool, bench, factory, structure)
		if err != nil {
			return core.CampaignSpec{}, err
		}
		if len(live) == 0 {
			return core.CampaignSpec{}, fmt.Errorf("report: %s/%s: no live entries in %s", tool, bench, structure)
		}
		for i := range masks {
			for j := range masks[i].Sites {
				masks[i].Sites[j].Entry = live[masks[i].Sites[j].Entry%len(live)]
			}
		}
	}
	return core.CampaignSpec{
		Tool: golden.Tool, Benchmark: bench, Structure: structure,
		Masks: masks, Factory: factory, TimeoutFactor: opt.timeoutFactor(), Workers: opt.Workers,
		UseCheckpoint:    opt.UseCheckpoint,
		DisableEarlyStop: opt.DisableEarlyStop,
		Exhaustive:       opt.Exhaustive,
		Golden:           &golden,
	}, nil
}

// RunCampaignFor runs one {tool, benchmark, structure} campaign.
func RunCampaignFor(tool, bench, structure string, opt Options) (*core.CampaignResult, error) {
	cache := opt.goldenCache()
	spec, err := campaignSpecFor(tool, bench, structure, opt, cache)
	if err != nil {
		return nil, err
	}
	results, err := core.RunMatrix([]core.CampaignSpec{spec}, opt.matrixOptions(cache, opt.Telemetry))
	if err != nil {
		return nil, err
	}
	res := results[0]
	if opt.Logs != nil {
		key := fault.CampaignKey(tool, bench, structure)
		if err := opt.Logs.Store(key, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunFigure reproduces one classification figure.
func RunFigure(spec FigureSpec, opt Options, progress io.Writer) (*FigureData, error) {
	fds, err := RunFigures([]FigureSpec{spec}, opt, progress)
	if err != nil {
		return nil, err
	}
	return fds[0], nil
}

// RunFigures reproduces several classification figures through the
// cross-campaign matrix scheduler: every {figure, benchmark, tool}
// campaign is flattened into one shared run queue executed by a single
// global worker pool, the golden reference of each {tool, benchmark} row
// is simulated exactly once for the whole matrix, and (UseCheckpoint)
// each row's fault-free prefix checkpoint is shared across its
// structures. Output is deterministic for a fixed seed and identical to
// running the campaigns one at a time.
//
// A non-nil progress writer receives structured periodic progress lines
// (runs/s, Mcycles/s, worker utilization, outcome drift) from the
// telemetry collector — opt.Telemetry when set, a private one otherwise
// — instead of the old one-line-per-campaign prints.
func RunFigures(specs []FigureSpec, opt Options, progress io.Writer) ([]*FigureData, error) {
	cache := opt.goldenCache()
	prewarmGoldens(opt, cache)

	// cell identifies one campaign of the flattened matrix: which figure
	// it belongs to plus the {tool, benchmark} ids its Cell carries.
	type cell struct {
		fig         int
		tool, bench string
		key         string
	}
	var cspecs []core.CampaignSpec
	var cells []cell
	for f, spec := range specs {
		for _, bench := range opt.benchmarks() {
			for _, tool := range opt.tools() {
				cs, err := campaignSpecFor(tool, bench, spec.Structure, opt, cache)
				if err != nil {
					return nil, err
				}
				cspecs = append(cspecs, cs)
				cells = append(cells, cell{
					fig: f, tool: tool, bench: bench,
					key: fault.CampaignKey(tool, bench, spec.Structure),
				})
			}
		}
	}

	collector := opt.Telemetry
	if collector == nil && progress != nil {
		collector = telemetry.New()
	}
	totalRuns := 0
	for _, cs := range cspecs {
		totalRuns += len(cs.Masks)
	}
	var rep *telemetry.Reporter
	if progress != nil {
		fmt.Fprintf(progress, "matrix: %d figures, %d campaigns, %d injection runs\n",
			len(specs), len(cspecs), totalRuns)
		rep = telemetry.StartReporter(collector, progress, opt.ProgressEvery)
		defer rep.Stop()
	}

	results, err := core.RunMatrix(cspecs, opt.matrixOptions(cache, collector))
	if rep != nil {
		rep.Stop()
	}
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintln(progress, collector.Snapshot().SummaryLine())
	}
	if opt.Logs != nil {
		for i, res := range results {
			if err := opt.Logs.Store(cells[i].key, res); err != nil {
				return nil, err
			}
		}
	}

	fds := make([]*FigureData, len(specs))
	for f, spec := range specs {
		fds[f] = &FigureData{Spec: spec}
	}
	for i, res := range results {
		c := cells[i]
		fds[c.fig].Cells = append(fds[c.fig].Cells, Cell{
			Tool: c.tool, Benchmark: c.bench,
			Breakdown: opt.Parser.ParseAll(res.Records),
			Golden:    res.Golden,
			Adaptive:  res.Adaptive,
		})
	}
	return fds, nil
}

// prewarmGoldens runs the golden reference of every {tool, benchmark}
// row of the matrix in parallel, so rows don't serialize behind the
// first campaign that needs each. Errors are left in the cache and
// surface, in deterministic campaign order, when the specs are built.
func prewarmGoldens(opt Options, cache *core.GoldenCache) {
	sem := make(chan struct{}, opt.workers())
	var wg sync.WaitGroup
	for _, bench := range opt.benchmarks() {
		for _, tool := range opt.tools() {
			w, err := workload.ByName(bench)
			if err != nil {
				continue
			}
			factory, err := sims.Factory(tool, w)
			if err != nil {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(tool, bench string, factory core.Factory) {
				defer wg.Done()
				defer func() { <-sem }()
				_, _ = cache.Golden(tool, bench, factory)
			}(tool, bench, factory)
		}
	}
	wg.Wait()
}

// CellFor returns the cell of one benchmark and tool.
func (fd *FigureData) CellFor(bench, tool string) (Cell, bool) {
	for _, c := range fd.Cells {
		if c.Benchmark == bench && c.Tool == tool {
			return c, true
		}
	}
	return Cell{}, false
}

// Average aggregates a tool's breakdown across all benchmarks of the
// figure — the rightmost "average" bars of the paper's charts.
func (fd *FigureData) Average(tool string) core.Breakdown {
	agg := core.Breakdown{
		Counts:  make(map[core.Class]int),
		Details: make(map[core.Detail]int),
		Weights: make(map[core.Class]float64),
	}
	for _, c := range fd.Cells {
		if c.Tool != tool {
			continue
		}
		agg.Total += c.Breakdown.Total
		agg.WeightSum += c.Breakdown.WeightSum
		agg.NonUnit = agg.NonUnit || c.Breakdown.NonUnit
		for k, v := range c.Breakdown.Counts {
			agg.Counts[k] += v
		}
		for k, v := range c.Breakdown.Details {
			agg.Details[k] += v
		}
		for k, v := range c.Breakdown.Weights {
			agg.Weights[k] += v
		}
	}
	return agg
}

// Tools returns the tools present in the figure, in canonical order.
func (fd *FigureData) Tools() []string {
	seen := map[string]bool{}
	for _, c := range fd.Cells {
		seen[c.Tool] = true
	}
	var out []string
	for _, t := range sims.Tools() {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

// Benchmarks returns the benchmarks present, in canonical order.
func (fd *FigureData) Benchmarks() []string {
	seen := map[string]bool{}
	for _, c := range fd.Cells {
		seen[c.Benchmark] = true
	}
	var out []string
	for _, b := range workload.Names() {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Render prints the figure as the paper's stacked-bar data: one row per
// (benchmark, tool) with the six class percentages, then the averages.
func (fd *FigureData) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure %d. Faulty behavior classification for the %s.\n",
		fd.Spec.ID, fd.Spec.Title)
	fmt.Fprintf(w, "%-10s %-6s %8s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "tool", "Masked", "SDC", "DUE", "Timeout", "Crash", "Assert", "vuln")
	row := func(name, tool string, b core.Breakdown) {
		// Importance-sampled (and census) cells render their
		// Horvitz–Thompson reweighted proportions — the raw run shares
		// are biased toward live sites by construction.
		pct, vuln := b.Pct, b.Vulnerability()
		if b.Weighted() {
			pct, vuln = b.WeightedPct, b.WeightedVulnerability()
		}
		fmt.Fprintf(w, "%-10s %-6s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			name, sims.ShortLabel(tool),
			pct(core.ClassMasked), pct(core.ClassSDC), pct(core.ClassDUE),
			pct(core.ClassTimeout), pct(core.ClassCrash), pct(core.ClassAssert),
			vuln)
	}
	for _, bench := range fd.Benchmarks() {
		for _, tool := range fd.Tools() {
			if c, ok := fd.CellFor(bench, tool); ok {
				row(bench, tool, c.Breakdown)
			}
		}
	}
	for _, tool := range fd.Tools() {
		row("AVERAGE", tool, fd.Average(tool))
	}
}

// ---- Golden runtime statistics (Remarks 1–11 support) -------------------------

// GoldenStats collects the fault-free runtime statistics of every tool
// and benchmark — the evidence base the paper uses to explain diverging
// reliability reports.
func GoldenStats(opt Options) (map[string]map[string]map[string]uint64, error) {
	out := make(map[string]map[string]map[string]uint64) // bench → tool → stats
	for _, bench := range opt.benchmarks() {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		out[bench] = make(map[string]map[string]uint64)
		for _, tool := range opt.tools() {
			factory, err := sims.Factory(tool, w)
			if err != nil {
				return nil, err
			}
			sim := factory()
			res := sim.Run(1 << 62)
			if res.Status != core.RunCompleted {
				return nil, fmt.Errorf("report: golden %s/%s: %v", tool, bench, res.Status)
			}
			out[bench][tool] = sim.Stats()
		}
	}
	return out, nil
}

// RenderRemarkStats prints the per-benchmark statistics ratios the
// paper's remarks cite: issued-vs-committed loads (Remark 3), store
// mixes and write misses (Remark 5), mispredictions (Remark 6), L1I
// replacements (Remark 7), and L2 write behaviour (Remarks 10–11).
func RenderRemarkStats(w io.Writer, stats map[string]map[string]map[string]uint64) {
	benches := make([]string, 0, len(stats))
	for b := range stats {
		benches = append(benches, b)
	}
	// Preserve canonical ordering.
	ordered := []string{}
	for _, b := range workload.Names() {
		for _, have := range benches {
			if have == b {
				ordered = append(ordered, b)
			}
		}
	}
	sort.Strings(benches)
	if len(ordered) > 0 {
		benches = ordered
	}

	ratio := func(a, b uint64) string {
		if b == 0 {
			return "     n/a"
		}
		return fmt.Sprintf("%7.2fx", float64(a)/float64(b))
	}
	fmt.Fprintln(w, "Runtime statistics backing the paper's remarks (fault-free runs)")
	fmt.Fprintf(w, "%-8s | %-24s | %-11s | %-11s | %-12s | %-13s\n",
		"bench",
		"issued loads M/G (R3)",
		"stores A/x86", "mispred M/G",
		"L1I miss A/x", "L1D wmiss A/x")
	for _, b := range benches {
		m := stats[b][sims.MaFINX86]
		gx := stats[b][sims.GeFINX86]
		ga := stats[b][sims.GeFINARM]
		if m == nil || gx == nil || ga == nil {
			continue
		}
		fmt.Fprintf(w, "%-8s | %s (%6d/%6d) | %s | %s | %s | %s\n",
			b,
			ratio(m["issued_loads"], gx["issued_loads"]), m["issued_loads"], gx["issued_loads"],
			ratio(ga["committed_stores"], gx["committed_stores"]),
			ratio(m["bp_mispredicts"], gx["bp_mispredicts"]),
			ratio(ga["l1i_read_misses"], gx["l1i_read_misses"]),
			ratio(ga["l1d_write_misses"], gx["l1d_write_misses"]))
	}
	fmt.Fprintln(w, "(R-numbers refer to the paper's remarks; M = MaFIN-x86, G = GeFIN-x86, A = GeFIN-ARM.")
	fmt.Fprintln(w, " At this input scale the L2 sees no write traffic, so the paper's R10/R11 L2")
	fmt.Fprintln(w, " ratios have no analog; see EXPERIMENTS.md.)")
}

// ---- Tables II–IV and the sampling table ---------------------------------------

// RenderSamplingTable reproduces the §IV.A statistical fault sampling
// numbers.
func RenderSamplingTable(w io.Writer) {
	fmt.Fprintln(w, "Statistical fault sampling (Leveugle et al., DATE 2009), p=0.5:")
	fmt.Fprintf(w, "  99%% confidence, 3%% margin  -> n = %d   (paper: 1843)\n",
		fault.SampleSize(0, 0.99, 0.03))
	fmt.Fprintf(w, "  99%% confidence, 5%% margin  -> n = %d    (paper: 663)\n",
		fault.SampleSize(0, 0.99, 0.05))
	fmt.Fprintf(w, "  2000 injections at 99%%     -> margin = %.2f%% (paper: 2.88%%)\n",
		100*fault.MarginFor(0, 2000, 0.99))
}

// RenderAdaptiveTable prints, next to the fixed-n sampling numbers, what
// the adaptive campaigns actually achieved: per cell, the runs simulated
// versus planned and the margin reached when the rule fired (or the cell
// ran to budget / the census completed). Cells without adaptive control
// are skipped; nothing is printed when no cell carried one.
func RenderAdaptiveTable(w io.Writer, figs []*FigureData) {
	header := false
	for _, fd := range figs {
		for _, c := range fd.Cells {
			a := c.Adaptive
			if a == nil {
				continue
			}
			if !header {
				header = true
				fmt.Fprintln(w, "Adaptive campaign control (achieved margins per cell):")
				fmt.Fprintf(w, "  %-10s %-6s %-24s %10s %10s %10s  %s\n",
					"benchmark", "tool", "structure", "simulated", "planned", "margin", "outcome")
			}
			outcome := "ran to budget"
			margin := fmt.Sprintf("%9.2f%%", 100*a.EffectiveMargin)
			switch {
			case a.Complete:
				outcome = "census complete"
				margin = "     exact"
			case a.StoppedEarly:
				outcome = fmt.Sprintf("stopped early at %.0f%% confidence", 100*a.Confidence)
			}
			fmt.Fprintf(w, "  %-10s %-6s %-24s %10d %10d %10s  %s\n",
				c.Benchmark, sims.ShortLabel(c.Tool), fd.Spec.Structure,
				a.SimulatedRuns, a.PlannedRuns, margin, outcome)
		}
	}
}

// RenderStructuresTable reproduces Table IV: the injectable structures
// of every tool configuration.
func RenderStructuresTable(w io.Writer) error {
	qsortW, err := workload.ByName("qsort")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table IV analog: injectable structures per tool")
	for _, tool := range sims.Tools() {
		factory, err := sims.Factory(tool, qsortW)
		if err != nil {
			return err
		}
		sim := factory()
		geoms := core.Geometries(sim)
		sort.Slice(geoms, func(i, j int) bool { return geoms[i].Name < geoms[j].Name })
		fmt.Fprintf(w, "  %s (%d structures):\n", sim.Name(), len(geoms))
		for _, g := range geoms {
			fmt.Fprintf(w, "    %-16s %6d entries x %4d bits = %8d bits\n",
				g.Name, g.Entries, g.BitsPerEntry, g.Entries*g.BitsPerEntry)
		}
	}
	return nil
}
