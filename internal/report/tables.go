package report

import (
	"fmt"
	"io"

	"repro/internal/gem5"
	"repro/internal/marss"
)

// RenderConfigTable reproduces Table II: the three simulator
// configurations side by side.
func RenderConfigTable(w io.Writer) {
	m := marss.DefaultConfig()
	gx := gem5.DefaultConfig(gem5.ISAX86)
	ga := gem5.DefaultConfig(gem5.ISAARM)
	fmt.Fprintln(w, "Table II analog: simulator configurations")
	fmt.Fprintf(w, "  %-22s %-22s %-22s %-22s\n", "Parameter", "MARSS/x86", "Gem5/x86", "Gem5/ARM")
	row := func(name string, a, b, c interface{}) {
		fmt.Fprintf(w, "  %-22s %-22v %-22v %-22v\n", name, a, b, c)
	}
	row("Pipeline", "OoO", "OoO", "OoO")
	row("Int physical regs", m.IntPhysRegs, gx.IntPhysRegs, ga.IntPhysRegs)
	row("FP physical regs", m.FPPhysRegs, gx.FPPhysRegs, ga.FPPhysRegs)
	row("Issue queue", m.IQEntries, gx.IQEntries, ga.IQEntries)
	row("Load/store queue",
		fmt.Sprintf("%d (unified)", m.LSQEntries),
		fmt.Sprintf("%d load / %d store", gx.LoadEntries, gx.StoreEntries),
		fmt.Sprintf("%d load / %d store", ga.LoadEntries, ga.StoreEntries))
	row("ROB entries", m.ROBEntries, gx.ROBEntries, ga.ROBEntries)
	row("Functional units",
		fmt.Sprintf("%d int, %d FP, %d AGU", m.IntALUs, m.FPALUs, m.MemPorts),
		fmt.Sprintf("%d int, %d FP, %d mem", gx.IntALUs, gx.FPALUs, gx.MemPorts),
		fmt.Sprintf("%d int, %d FP, %d mem", ga.IntALUs, ga.FPALUs, ga.MemPorts))
	cache := func(c interface{ String() string }) string { return c.String() }
	_ = cache
	cc := func(size, line, ways int) string {
		return fmt.Sprintf("%dKB %dB/line %d-way", size>>10, line, ways)
	}
	row("L1 I-cache", cc(m.L1I.Size, m.L1I.LineSize, m.L1I.Ways),
		cc(gx.L1I.Size, gx.L1I.LineSize, gx.L1I.Ways), cc(ga.L1I.Size, ga.L1I.LineSize, ga.L1I.Ways))
	row("L1 D-cache", cc(m.L1D.Size, m.L1D.LineSize, m.L1D.Ways),
		cc(gx.L1D.Size, gx.L1D.LineSize, gx.L1D.Ways), cc(ga.L1D.Size, ga.L1D.LineSize, ga.L1D.Ways))
	row("L2 cache", cc(m.L2.Size, m.L2.LineSize, m.L2.Ways),
		cc(gx.L2.Size, gx.L2.LineSize, gx.L2.Ways), cc(ga.L2.Size, ga.L2.LineSize, ga.L2.Ways))
	row("Write policy", "dual-copy (QEMU-backed)", "write-back", "write-back")
	row("Branch predictor", "tournament (by address)", "tournament (by history)", "tournament (by history)")
	row("BTB",
		fmt.Sprintf("direct %d 4-way + indirect %d 4-way", m.BTBDirEntries, m.BTBIndEntries),
		fmt.Sprintf("%d direct-mapped", gx.BTBEntries),
		fmt.Sprintf("%d direct-mapped", ga.BTBEntries))
	row("RAS", m.RASEntries, gx.RASEntries, ga.RASEntries)
	row("Prefetchers", "L1I + L1D next-line", "none", "none")
	row("Load issue", "aggressive + replay", "conservative", "conservative")
	row("Syscall path", "hypervisor (memory)", "through caches", "through caches")
}

// RenderFaultModels reproduces Table III: the supported fault models.
func RenderFaultModels(w io.Writer) {
	fmt.Fprintln(w, "Table III analog: fault models")
	fmt.Fprintln(w, "  transient    a storage bit is flipped at a clock cycle; bit position and")
	fmt.Fprintln(w, "               cycle arbitrary (random or directed)")
	fmt.Fprintln(w, "  intermittent a storage bit is forced to 0 or 1 from a start cycle for an")
	fmt.Fprintln(w, "               arbitrary number of cycles")
	fmt.Fprintln(w, "  permanent    a storage bit is permanently forced to 0 or 1")
	fmt.Fprintln(w, "  multiplicity single faults, multiple bits of one entry, multiple entries,")
	fmt.Fprintln(w, "               multiple structures, and combinations (fault.MultiStructure)")
}
