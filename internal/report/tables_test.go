package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderConfigTable(t *testing.T) {
	var buf bytes.Buffer
	RenderConfigTable(&buf)
	out := buf.String()
	for _, want := range []string{
		"MARSS/x86", "Gem5/x86", "Gem5/ARM",
		"32 (unified)", "16 load / 16 store",
		"64", "40", // ROB sizes
		"dual-copy", "write-back",
		"tournament (by address)", "tournament (by history)",
		"2048 direct-mapped",
		"aggressive + replay", "conservative",
		"hypervisor (memory)", "through caches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("config table missing %q", want)
		}
	}
}

func TestRenderFaultModels(t *testing.T) {
	var buf bytes.Buffer
	RenderFaultModels(&buf)
	for _, want := range []string{"transient", "intermittent", "permanent", "multiplicity"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("fault model table missing %q", want)
		}
	}
}
