package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sims"
)

func TestLoadFigureRoundTrip(t *testing.T) {
	repo, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Injections: 8, Seed: 3, Benchmarks: []string{"qsort"}, Logs: repo, Workers: 2}
	spec := Figures[0] // Fig 2: rf.int
	ran, err := RunFigure(spec, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFigure(repo, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cells) != len(ran.Cells) {
		t.Fatalf("cells %d vs %d", len(loaded.Cells), len(ran.Cells))
	}
	for i := range ran.Cells {
		if ran.Cells[i].Breakdown.Counts[core.ClassMasked] != loaded.Cells[i].Breakdown.Counts[core.ClassMasked] {
			t.Fatalf("cell %d differs after reload", i)
		}
	}
	// Reclassification without re-running: coarse grouping.
	opt.Parser = core.Parser{CoarseMaskedOnly: true}
	coarse, err := LoadFigure(repo, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range coarse.Cells {
		for cls := range c.Breakdown.Counts {
			if cls != core.ClassMasked && cls != core.NonMasked {
				t.Fatalf("coarse classification leaked class %v", cls)
			}
		}
	}
	// Missing campaign surfaces as an error.
	if _, err := LoadFigure(repo, Figures[1], opt); err == nil {
		t.Fatal("missing campaign accepted")
	}
}

func TestRenderDifferentialSummary(t *testing.T) {
	mk := func(fig int, m, gx, ga int) *FigureData {
		spec, _ := FigureByID(fig)
		fd := &FigureData{Spec: spec}
		add := func(tool string, nonMasked int) {
			b := core.Breakdown{Total: 100, Counts: map[core.Class]int{
				core.ClassMasked: 100 - nonMasked, core.ClassSDC: nonMasked}}
			fd.Cells = append(fd.Cells, Cell{Tool: tool, Benchmark: "qsort", Breakdown: b})
		}
		add(sims.MaFINX86, m)
		add(sims.GeFINX86, gx)
		add(sims.GeFINARM, ga)
		return fd
	}
	var buf bytes.Buffer
	RenderDifferentialSummary(&buf, []*FigureData{
		mk(3, 15, 22, 23), // L1D: tools differ by 7, ISAs by 1
		mk(5, 6, 7, 7),
	})
	out := buf.String()
	if !strings.Contains(out, "7.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("summary gaps missing:\n%s", out)
	}
	if !strings.Contains(out, "central conclusion") {
		t.Fatalf("verdict missing:\n%s", out)
	}
	buf.Reset()
	RenderDominantClasses(&buf, []*FigureData{mk(3, 15, 22, 23)})
	if !strings.Contains(buf.String(), "SDC") {
		t.Fatalf("dominant classes:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	spec, _ := FigureByID(2)
	fd := &FigureData{Spec: spec}
	fd.Cells = append(fd.Cells, Cell{Tool: sims.MaFINX86, Benchmark: "qsort",
		Breakdown: core.Breakdown{Total: 10, Counts: map[core.Class]int{
			core.ClassMasked: 9, core.ClassSDC: 1}}})
	var buf bytes.Buffer
	if err := fd.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure,structure,benchmark", "2,rf.int,qsort,M-x86,10", "10.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}
