package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sims"
)

func TestFigureByID(t *testing.T) {
	f, err := FigureByID(3)
	if err != nil || f.Structure != "l1d.data" {
		t.Fatalf("fig 3: %+v %v", f, err)
	}
	if _, err := FigureByID(7); err == nil {
		t.Fatal("figure 7 accepted")
	}
	if len(Figures) != 5 {
		t.Fatalf("want 5 figures, got %d", len(Figures))
	}
}

func TestRunFigureMini(t *testing.T) {
	opt := Options{
		Injections: 12,
		Seed:       7,
		Benchmarks: []string{"qsort"},
		Workers:    2,
	}
	fd, err := RunFigure(Figures[4], opt, nil) // Fig 6: LSQ
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Cells) != 3 {
		t.Fatalf("cells %d, want 3 (one per tool)", len(fd.Cells))
	}
	for _, c := range fd.Cells {
		if c.Breakdown.Total != 12 {
			t.Fatalf("%s: total %d", c.Tool, c.Breakdown.Total)
		}
		if c.Golden.Cycles == 0 {
			t.Fatalf("%s: missing golden", c.Tool)
		}
	}
	if _, ok := fd.CellFor("qsort", sims.MaFINX86); !ok {
		t.Fatal("missing MaFIN cell")
	}
	avg := fd.Average(sims.GeFINX86)
	if avg.Total != 12 {
		t.Fatalf("average total %d", avg.Total)
	}
	var buf bytes.Buffer
	fd.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 6", "qsort", "M-x86", "G-x86", "G-ARM", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGoldenStatsAndRemarks(t *testing.T) {
	opt := Options{Benchmarks: []string{"qsort", "sha", "fft"}}
	stats, err := GoldenStats(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats benches: %d", len(stats))
	}
	// Aggregated across benchmarks, the MARSS-like tool must execute
	// more loads than the Gem5-like tool on the same binaries
	// (aggressive issue + replays — Remark 3's direction; the paper
	// notes the trend holds for most, not all, individual benchmarks).
	var m, g uint64
	for _, b := range []string{"qsort", "sha", "fft"} {
		m += stats[b][sims.MaFINX86]["issued_loads"]
		g += stats[b][sims.GeFINX86]["issued_loads"]
	}
	if m <= g {
		t.Errorf("aggregate: MaFIN issued %d loads <= GeFIN %d — aggressive issue not visible", m, g)
	}
	var buf bytes.Buffer
	RenderRemarkStats(&buf, stats)
	if !strings.Contains(buf.String(), "issued loads") {
		t.Errorf("remark render:\n%s", buf.String())
	}
}

func TestRenderSamplingTable(t *testing.T) {
	var buf bytes.Buffer
	RenderSamplingTable(&buf)
	for _, want := range []string{"1843", "663", "2.88"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("sampling table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRenderStructuresTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderStructuresTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MaFIN-x86", "GeFIN-x86", "GeFIN-arm", "l1d.data", "btb.ind.target"} {
		if !strings.Contains(out, want) {
			t.Errorf("structures table missing %q", want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if len(o.benchmarks()) != 10 || len(o.tools()) != 3 || o.injections() != 200 {
		t.Fatalf("defaults: %v %v %d", o.benchmarks(), o.tools(), o.injections())
	}
}

func TestCampaignPersistsToLogs(t *testing.T) {
	repo, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Injections: 5, Benchmarks: []string{"qsort"}, Logs: repo, Workers: 2}
	if _, err := RunCampaignFor(sims.GeFINX86, "qsort", "rf.int", opt); err != nil {
		t.Fatal(err)
	}
	keys, err := repo.Campaigns()
	if err != nil || len(keys) != 1 {
		t.Fatalf("campaigns: %v %v", keys, err)
	}
	back, err := repo.Load(keys[0])
	if err != nil || len(back.Records) != 5 {
		t.Fatalf("load: %v %v", back, err)
	}
}

func TestLiveOnlyFigure(t *testing.T) {
	opt := Options{Injections: 10, Seed: 2, Benchmarks: []string{"qsort"},
		Tools: []string{sims.GeFINX86}, Workers: 2, LiveOnly: true}
	fd, err := RunFigure(Figures[3], opt, nil) // Fig 5: L2
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Cells) != 1 || fd.Cells[0].Breakdown.Total != 10 {
		t.Fatalf("cells: %+v", fd.Cells)
	}
	// Live-only L2 sampling should find at least some non-masked runs
	// where uniform sampling finds none — but with n=10 we only assert
	// it executed; the conditional numbers are recorded in EXPERIMENTS.
}
