package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// CoordinatorOptions parameterize shard planning, lease terms, and the
// coordinator-side resources of a distributed campaign.
type CoordinatorOptions struct {
	// ShardSize is the number of masks per shard (default 50). Smaller
	// shards spread better and re-run less on worker death; larger ones
	// amortize the per-shard plan rebuild on the worker.
	ShardSize int
	// LeaseTTL is how long a worker may hold a shard without
	// heartbeating before the coordinator requeues it (default 10s).
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one shard may be requeued after
	// lease expiry before the campaign fails (default 3).
	MaxRetries int
	// RetryBackoff delays a requeued shard's next assignment by
	// backoff×retries (default 1s).
	RetryBackoff time.Duration
	// Telemetry, when non-nil, receives the merged event stream — one
	// run-end event per mask, with the same provenance a single-node run
	// emits, so progress lines, snapshots and trace sinks aggregate
	// across shards unchanged.
	Telemetry *telemetry.Collector
	// JournalFor, when non-nil, opens the durable run journal of a
	// campaign key. The coordinator appends every merged simulated run
	// to it — the exactly-once completion ledger of the distributed
	// campaign (workers never journal).
	JournalFor func(key string) (*fault.Journal, error)
	// Logf, when non-nil, receives coordinator lifecycle lines (lease
	// grants, requeues, duplicates).
	Logf func(format string, args ...any)

	// now is the clock; tests compress lease time.
	now func() time.Time
}

func (o CoordinatorOptions) shardSize() int {
	if o.ShardSize > 0 {
		return o.ShardSize
	}
	return 50
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 10 * time.Second
}

func (o CoordinatorOptions) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 3
}

func (o CoordinatorOptions) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return time.Second
}

// Stats is a point-in-time view of the coordinator's shard accounting.
type Stats struct {
	Shards     int // planned shards
	Completed  int // shards merged
	Requeues   int // lease expiries that put a shard back on the queue
	Duplicates int // completions of already-completed shards (discarded)
}

const (
	shardQueued = iota
	shardLeased
	shardCompleted
)

type shardState struct {
	shard    Shard
	state    int
	worker   string
	expiry   time.Time // lease deadline while leased
	eligible time.Time // earliest next assignment while queued
	retries  int
}

// pendingReplica is a replicated row awaiting its representative's
// merged record; resolved at finalize exactly like the single-node
// plan fill-in.
type pendingReplica struct {
	campaign, index, rep int
	maskID               int
	sites                []fault.Site
}

// Coordinator plans a campaign config into mask-range shards, serves
// them to workers over the /v1 protocol, and merges completed shards
// into per-campaign results identical to a single-node run.
type Coordinator struct {
	cfg  core.CampaignConfig
	opt  CoordinatorOptions
	keys []string

	mu        sync.Mutex
	shards    []*shardState
	remaining int
	goldens   []core.GoldenInfo
	goldenSet []bool
	records   [][]core.LogRecord
	filled    [][]bool
	replicas  []pendingReplica
	journals  map[string]*fault.Journal
	camps     []*telemetry.CampaignStats
	stats     Stats
	failure   error
	finished  bool
	doneCh    chan struct{}
	results   []*core.CampaignResult
}

// New validates the config, plans the shard queue, and registers the
// campaign rows with the telemetry collector.
func New(cfg core.CampaignConfig, opt CoordinatorOptions) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SchemaVersion == 0 {
		// Stamp the lowest version that can express the config: configs
		// without detail-window fields are served as version 1 so legacy
		// workers keep accepting them.
		cfg.SchemaVersion = cfg.WireSchemaVersion()
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	c := &Coordinator{
		cfg: cfg, opt: opt, keys: cfg.Keys(),
		goldens:   make([]core.GoldenInfo, len(cfg.Campaigns)),
		goldenSet: make([]bool, len(cfg.Campaigns)),
		records:   make([][]core.LogRecord, len(cfg.Campaigns)),
		filled:    make([][]bool, len(cfg.Campaigns)),
		journals:  make(map[string]*fault.Journal),
		doneCh:    make(chan struct{}),
	}
	total := 0
	size := opt.shardSize()
	for i := range cfg.Campaigns {
		n := cfg.MaskCount(i)
		total += n
		c.records[i] = make([]core.LogRecord, n)
		c.filled[i] = make([]bool, n)
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			c.shards = append(c.shards, &shardState{
				shard: Shard{ID: len(c.shards), Campaign: i, MaskLo: lo, MaskHi: hi},
			})
		}
	}
	c.remaining = len(c.shards)
	c.stats.Shards = len(c.shards)
	if tel := opt.Telemetry; tel != nil {
		// Worker pools live in the worker processes; the coordinator has
		// no pool of its own, so the utilization gauge stays off.
		tel.Start(0)
		tel.AddQueued(total)
		c.camps = make([]*telemetry.CampaignStats, len(cfg.Campaigns))
		for i, cell := range cfg.Campaigns {
			c.camps[i] = tel.Campaign(c.keys[i], cell.Tool, cell.Benchmark, cell.Structure)
		}
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Stats returns the current shard accounting.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// failLocked records the first terminal error and wakes Wait.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.finishLocked()
}

func (c *Coordinator) finishLocked() {
	if !c.finished {
		c.finished = true
		close(c.doneCh)
	}
}

// sweepLocked requeues the shards of workers that stopped heartbeating.
// Called on every lease and from Wait's ticker, so dead workers are
// noticed even when no one else asks for work.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, s := range c.shards {
		if s.state != shardLeased || s.expiry.After(now) {
			continue
		}
		s.retries++
		if s.retries > c.opt.maxRetries() {
			c.failLocked(fmt.Errorf("dist: shard %d (campaign %d masks [%d,%d)) lost its lease %d times; giving up",
				s.shard.ID, s.shard.Campaign, s.shard.MaskLo, s.shard.MaskHi, s.retries))
			return
		}
		c.logf("dist: shard %d lease by %s expired; requeued (retry %d)", s.shard.ID, s.worker, s.retries)
		s.state = shardQueued
		s.worker = ""
		s.eligible = now.Add(time.Duration(s.retries) * c.opt.retryBackoff())
		c.stats.Requeues++
	}
}

func (c *Coordinator) lease(workerID string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.now()
	c.sweepLocked(now)
	if c.failure != nil {
		return LeaseResponse{Status: StatusFailed, Error: c.failure.Error()}
	}
	if c.remaining == 0 {
		return LeaseResponse{Status: StatusDone}
	}
	var nearest time.Time
	for _, s := range c.shards {
		switch s.state {
		case shardQueued:
			if !s.eligible.After(now) {
				s.state = shardLeased
				s.worker = workerID
				s.expiry = now.Add(c.opt.leaseTTL())
				c.logf("dist: shard %d leased to %s", s.shard.ID, workerID)
				sh := s.shard
				return LeaseResponse{Status: StatusShard, Shard: &sh}
			}
			if nearest.IsZero() || s.eligible.Before(nearest) {
				nearest = s.eligible
			}
		case shardLeased:
			if nearest.IsZero() || s.expiry.Before(nearest) {
				nearest = s.expiry
			}
		}
	}
	wait := time.Second
	if !nearest.IsZero() {
		wait = nearest.Sub(now)
	}
	if wait < 50*time.Millisecond {
		wait = 50 * time.Millisecond
	}
	if wait > time.Second {
		wait = time.Second
	}
	return LeaseResponse{Status: StatusWait, WaitMS: wait.Milliseconds()}
}

func (c *Coordinator) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.ShardID < 0 || req.ShardID >= len(c.shards) {
		return HeartbeatResponse{}
	}
	s := c.shards[req.ShardID]
	now := c.opt.now()
	if s.state != shardLeased || s.worker != req.WorkerID || !s.expiry.After(now) {
		return HeartbeatResponse{}
	}
	s.expiry = now.Add(c.opt.leaseTTL())
	return HeartbeatResponse{OK: true}
}

// ackLocked stamps the campaign's terminal state onto a completion ack
// so the delivering worker never needs a post-completion lease poll —
// which would race the coordinator's shutdown once the last shard lands.
func (c *Coordinator) ackLocked(r CompleteResponse) CompleteResponse {
	if c.failure != nil {
		r.Failed = c.failure.Error()
	} else if c.finished {
		r.Done = true
	}
	return r
}

func (c *Coordinator) complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.ShardID < 0 || req.ShardID >= len(c.shards) {
		return CompleteResponse{Error: fmt.Sprintf("dist: no shard %d", req.ShardID)}
	}
	s := c.shards[req.ShardID]
	if req.Error != "" {
		// Shard execution is deterministic: the same masks would fail the
		// same way on any worker, so a reported error fails the campaign.
		c.failLocked(fmt.Errorf("dist: worker %s failed shard %d (campaign %d masks [%d,%d)): %s",
			req.WorkerID, s.shard.ID, s.shard.Campaign, s.shard.MaskLo, s.shard.MaskHi, req.Error))
		return c.ackLocked(CompleteResponse{OK: true})
	}
	if s.state == shardCompleted {
		// A requeued shard finished twice (the original worker was slow,
		// not dead). The late copy is byte-identical by determinism;
		// discard it — the per-mask ledger stays exactly-once.
		c.stats.Duplicates++
		c.logf("dist: duplicate completion of shard %d by %s discarded", s.shard.ID, req.WorkerID)
		return c.ackLocked(CompleteResponse{OK: true})
	}
	if err := c.mergeLocked(s.shard, req.Result); err != nil {
		c.failLocked(err)
		return c.ackLocked(CompleteResponse{OK: true})
	}
	s.state = shardCompleted
	s.worker = req.WorkerID
	c.remaining--
	c.stats.Completed++
	c.logf("dist: shard %d completed by %s (%d/%d)", s.shard.ID, req.WorkerID, c.stats.Completed, c.stats.Shards)
	if c.remaining == 0 && c.failure == nil {
		if err := c.finalizeLocked(); err != nil {
			c.failLocked(err)
		} else {
			c.finishLocked()
		}
	}
	return c.ackLocked(CompleteResponse{OK: true, Accepted: true})
}

// mergeLocked folds one shard result into the per-campaign record
// arrays, journals its simulated runs, and re-emits its run-end events
// through the coordinator's collector — the same events, with the same
// provenance, a single-node run would have emitted for these masks.
func (c *Coordinator) mergeLocked(sh Shard, res *core.ShardResult) error {
	if res == nil {
		return fmt.Errorf("dist: shard %d completed without a result", sh.ID)
	}
	if len(res.Runs) != sh.MaskHi-sh.MaskLo {
		return fmt.Errorf("dist: shard %d returned %d runs for window [%d,%d)", sh.ID, len(res.Runs), sh.MaskLo, sh.MaskHi)
	}
	i := sh.Campaign
	if !c.goldenSet[i] {
		c.goldens[i] = res.Golden
		c.goldenSet[i] = true
	} else if !reflect.DeepEqual(c.goldens[i], res.Golden) {
		// Deterministic simulators must agree on the fault-free reference;
		// a mismatch means the fleet runs divergent builds.
		return fmt.Errorf("dist: shard %d golden header disagrees with campaign %d's (mixed worker builds?)", sh.ID, i)
	}
	for _, run := range res.Runs {
		if run.Index < sh.MaskLo || run.Index >= sh.MaskHi {
			return fmt.Errorf("dist: shard %d returned mask index %d outside window [%d,%d)", sh.ID, run.Index, sh.MaskLo, sh.MaskHi)
		}
		if c.filled[i][run.Index] {
			continue // exactly-once ledger: an overlapping row merges once
		}
		c.filled[i][run.Index] = true
		switch run.Pruned {
		case "replicated":
			c.replicas = append(c.replicas, pendingReplica{
				campaign: i, index: run.Index, rep: run.RepIndex,
				maskID: run.Record.MaskID, sites: run.Record.Sites,
			})
			continue // verdict copied from the representative at finalize
		case "":
			// Only simulated runs reach the journal — the same rows a
			// single-node -journal campaign acknowledges.
			if c.opt.JournalFor != nil {
				if err := c.journalLocked(c.keys[i], run); err != nil {
					return err
				}
			}
		}
		c.records[i][run.Index] = run.Record
		c.emitLocked(i, run, run.Pruned, -1)
	}
	return nil
}

func (c *Coordinator) journalLocked(key string, run core.ShardRun) error {
	jnl, ok := c.journals[key]
	if !ok {
		var err error
		if jnl, err = c.opt.JournalFor(key); err != nil {
			return fmt.Errorf("dist: opening journal for %s: %w", key, err)
		}
		c.journals[key] = jnl
	}
	raw, err := json.Marshal(&run.Record)
	if err != nil {
		return fmt.Errorf("dist: journaling %s mask %d: %w", key, run.Record.MaskID, err)
	}
	return jnl.Append(fault.JournalEntry{
		Campaign: key, MaskID: run.Record.MaskID, Record: raw,
		Observed: run.Observed, FirstObsCycle: run.FirstObsCycle, EarlyStop: run.EarlyStop,
	})
}

// emitLocked synthesizes the run-end telemetry event of one merged row.
func (c *Coordinator) emitLocked(i int, run core.ShardRun, pruned string, repMask int) {
	tel := c.opt.Telemetry
	if tel == nil {
		return
	}
	cell := c.cfg.Campaigns[i]
	cls, _ := (core.Parser{}).Classify(run.Record)
	tel.RunStarted()
	tel.RunDone(c.camps[i], telemetry.RunEvent{
		Campaign:       c.keys[i],
		Tool:           c.camps[i].Tool,
		Benchmark:      cell.Benchmark,
		Structure:      cell.Structure,
		MaskID:         run.Record.MaskID,
		Sites:          run.Record.Sites,
		Status:         run.Record.Status,
		Class:          string(cls),
		Cycles:         run.Record.Cycles,
		Wall:           time.Duration(run.WallNS),
		Observed:       run.Observed,
		FirstObsCycle:  run.FirstObsCycle,
		EarlyStop:      run.EarlyStop,
		WatchedReads:   run.WatchedReads,
		WatchedWrites:  run.WatchedWrites,
		ObservedReads:  run.ObservedReads,
		ObservedWrites: run.ObservedWrites,
		LadderRestored: run.LadderRestored,
		RungCycle:      run.RungCycle,
		Windowed:       run.Windowed,
		WindowEntered:  run.WindowEntered,
		WindowExited:   run.WindowExited,
		FastSteps:      run.FastSteps,
		DetailCycles:   run.DetailCycles,
		Pruned:         pruned,
		RepMask:        repMask,
	})
}

// finalizeLocked resolves replicated rows against their merged
// representatives — copying the representative's record and restamping
// the mask identity, exactly as the single-node plan fill-in does —
// then checks the per-mask ledger is complete and builds the results.
func (c *Coordinator) finalizeLocked() error {
	for _, r := range c.replicas {
		if !c.filled[r.campaign][r.rep] {
			return fmt.Errorf("dist: campaign %d mask %d replicates mask %d, which never completed", r.campaign, r.index, r.rep)
		}
		rep := c.records[r.campaign][r.rep]
		repMask := rep.MaskID
		rec := rep
		rec.MaskID = r.maskID
		rec.Sites = r.sites
		c.records[r.campaign][r.index] = rec
		c.emitLocked(r.campaign, core.ShardRun{Index: r.index, Record: rec}, "replicated", repMask)
	}
	for i := range c.records {
		for m, ok := range c.filled[i] {
			if !ok {
				return fmt.Errorf("dist: campaign %d mask %d never completed despite all shards reporting", i, m)
			}
		}
	}
	c.results = make([]*core.CampaignResult, len(c.records))
	for i := range c.records {
		c.results[i] = &core.CampaignResult{Golden: c.goldens[i], Records: c.records[i]}
	}
	return nil
}

// Wait blocks until every shard has completed (returning the merged
// per-campaign results, in config cell order) or the campaign fails.
// It also drives the lease sweep, so dead workers are requeued even
// when no live worker is polling.
func (c *Coordinator) Wait(ctx context.Context) ([]*core.CampaignResult, error) {
	tick := c.opt.leaseTTL() / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.doneCh:
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.failure != nil {
				return nil, c.failure
			}
			return c.results, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
			c.mu.Lock()
			c.sweepLocked(c.opt.now())
			c.mu.Unlock()
		}
	}
}

// Close closes the journals the coordinator opened.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.journals = map[string]*fault.Journal{}
	return first
}

// Handler returns the /v1 protocol endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/config", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, ConfigResponse{
			ProtocolVersion: ProtocolVersion,
			Config:          c.cfg,
			LeaseTTLMS:      c.opt.leaseTTL().Milliseconds(),
		})
	})
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.lease(req.WorkerID))
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.heartbeat(req))
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.complete(req))
	})
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
