package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/svc/api"
	"repro/internal/telemetry"
)

// ErrCancelled is the terminal failure of a campaign cancelled through
// Cancel; errors.Is distinguishes operator cancellation from real
// failures.
var ErrCancelled = errors.New("dist: campaign cancelled")

// CoordinatorOptions parameterize shard planning, lease terms, and the
// coordinator-side resources of a distributed campaign.
type CoordinatorOptions struct {
	// ShardSize is the number of masks per shard (default 50). Smaller
	// shards spread better and re-run less on worker death; larger ones
	// amortize the per-shard plan rebuild on the worker.
	ShardSize int
	// LeaseTTL is how long a worker may hold a shard without
	// heartbeating before the coordinator requeues it (default 10s).
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one shard may be requeued after
	// lease expiry before the campaign fails (default 3).
	MaxRetries int
	// RetryBackoff delays a requeued shard's next assignment by
	// backoff×retries (default 1s).
	RetryBackoff time.Duration
	// Telemetry, when non-nil, receives the merged event stream — one
	// run-end event per mask, with the same provenance a single-node run
	// emits, so progress lines, snapshots and trace sinks aggregate
	// across shards unchanged.
	Telemetry *telemetry.Collector
	// JournalFor, when non-nil, opens the durable run journal of a
	// campaign key. The coordinator appends every merged simulated run
	// to it — the exactly-once completion ledger of the distributed
	// campaign (workers never journal).
	JournalFor func(key string) (*fault.Journal, error)
	// Divergence, when non-nil, accumulates one divergence-provenance
	// record per merged mask, rebuilt from the per-run fields workers
	// ship on ShardRun — so the sorted sink flushes byte-identical to a
	// single-node -divergence run of the same config (replicated rows
	// are resolved coordinator-side at finalize, like the plan fill-in).
	Divergence *divergence.Sink
	// Tracer, when non-nil, assembles the campaign's end-to-end span
	// tree: a root campaign span, a pre-identified shard span per shard
	// (workers parent their matrix spans under it via Shard.SpanID), a
	// coordinator-side merge phase per completion, and every worker
	// span forwarded on arrival.
	Tracer *telemetry.Tracer
	// Logf, when non-nil, receives coordinator lifecycle lines (lease
	// grants, requeues, duplicates).
	Logf func(format string, args ...any)
	// MasksFor materializes the deterministic mask population of one
	// campaign cell — required when the config arms sequential early
	// stopping (stop_margin): the coordinator settles every mask beyond
	// the stop point as a stopped-early provenance row, and those rows
	// need the mask's sites and sampling weight even though no worker
	// ever simulated them.
	MasksFor func(campaign int) ([]fault.Mask, error)

	// Resume replays the campaign's durable run journals before serving
	// any lease: journaled runs prefill the exactly-once ledger (and the
	// adaptive estimators re-derive any stop decision from the real
	// completions, exactly like the single-node resume), fully-replayed
	// shards never lease again, and the journals are never re-appended
	// for replayed masks. Requires JournalFor and MasksFor.
	Resume bool

	// now is the clock; tests compress lease time.
	now func() time.Time
}

func (o CoordinatorOptions) shardSize() int {
	if o.ShardSize > 0 {
		return o.ShardSize
	}
	return 50
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 10 * time.Second
}

func (o CoordinatorOptions) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 3
}

func (o CoordinatorOptions) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return time.Second
}

// Stats is a point-in-time view of the coordinator's shard accounting.
type Stats struct {
	Shards     int // planned shards
	Completed  int // shards merged
	Requeues   int // lease expiries that put a shard back on the queue
	Duplicates int // completions of already-completed shards (discarded)
	Cancelled  int // shards cancelled by a cell's early-stop decision
}

const (
	shardQueued = iota
	shardLeased
	shardCompleted
)

type shardState struct {
	shard    Shard
	state    int
	worker   string
	expiry   time.Time // lease deadline while leased
	eligible time.Time // earliest next assignment while queued
	leased   time.Time // when the current lease was granted (span start)
	retries  int
}

// workerView is the coordinator's per-worker accounting behind the
// fleet snapshot, /fleet.json and the progress line's worker columns.
type workerView struct {
	lastSeen time.Time
	shard    int // currently leased shard, -1 when idle
	done     int // shards completed (accepted)
	snap     *telemetry.Snapshot
	final    bool // worker posted its final snapshot (draining/exited)
}

// WorkerStatus (the exported per-worker view served at /v1/fleet.json)
// is aliased from the api package in protocol.go.

// cellControl is the coordinator-side sequential stopping rule of one
// campaign cell — the distributed analog of the scheduler's cellStopper.
// Workers always run their whole shard (RunShard disarms the local
// rule); the coordinator owns the global decision and enforces the same
// contiguous-prefix discipline: merged rows buffer in pend until every
// lower mask index has merged, then commit in mask order, feeding the
// estimator one simulated run at a time and evaluating exactly when the
// simulated count reaches a boundary. The decision therefore depends
// only on the config, never on shard size, worker count, or merge
// timing — a 1-, 2- and 4-worker fleet stop at the identical cutoff,
// and journals, records and divergence files come out identical.
type cellControl struct {
	est      *adaptive.Estimator
	cadence  int
	pend     []*core.ShardRun // merged-but-uncommitted rows, by mask index
	frontier int              // mask indices [0, frontier) committed
	sim      int              // simulated rows fed to the estimator
	boundary int              // next evaluation point (simulated-run count)

	stopped     bool
	settled     bool
	finalMargin float64
}

// pendingReplica is a replicated row awaiting its representative's
// merged record; resolved at finalize exactly like the single-node
// plan fill-in.
type pendingReplica struct {
	campaign, index, rep int
	maskID               int
	sites                []fault.Site
}

// Coordinator plans a campaign config into mask-range shards, serves
// them to workers over the /v1 protocol, and merges completed shards
// into per-campaign results identical to a single-node run.
type Coordinator struct {
	cfg  core.CampaignConfig
	opt  CoordinatorOptions
	keys []string

	mu        sync.Mutex
	shards    []*shardState
	remaining int
	goldens   []core.GoldenInfo
	goldenSet []bool
	records   [][]core.LogRecord
	filled    [][]bool
	replicas  []pendingReplica
	adapt     []*cellControl // per-cell stopping rules, nil when disarmed
	masks     [][]fault.Mask // memoized MasksFor results
	journals  map[string]*fault.Journal
	// journaled are the per-key mask IDs already on disk when a resumed
	// coordinator opened the journals; appends for them are skipped so a
	// resumed campaign's journal never holds a mask twice.
	journaled   map[string]map[int]bool
	resumedRuns int
	camps       []*telemetry.CampaignStats
	workers     map[string]*workerView
	rootSpan    *telemetry.ActiveSpan
	stats       Stats
	failure     error
	finished    bool
	doneCh      chan struct{}
	results     []*core.CampaignResult
}

// New validates the config, plans the shard queue, and registers the
// campaign rows with the telemetry collector.
func New(cfg core.CampaignConfig, opt CoordinatorOptions) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Exhaustive {
		return nil, fmt.Errorf("dist: exhaustive campaigns have no fixed shard geometry (the census size is profile-derived); run them single-node")
	}
	if cfg.StopMargin > 0 && opt.MasksFor == nil {
		return nil, fmt.Errorf("dist: adaptive campaigns (stop_margin) need CoordinatorOptions.MasksFor to settle cancelled masks")
	}
	if cfg.SchemaVersion == 0 {
		// Stamp the lowest version that can express the config: configs
		// without detail-window fields are served as version 1 so legacy
		// workers keep accepting them.
		cfg.SchemaVersion = cfg.WireSchemaVersion()
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	c := &Coordinator{
		cfg: cfg, opt: opt, keys: cfg.Keys(),
		goldens:   make([]core.GoldenInfo, len(cfg.Campaigns)),
		goldenSet: make([]bool, len(cfg.Campaigns)),
		records:   make([][]core.LogRecord, len(cfg.Campaigns)),
		filled:    make([][]bool, len(cfg.Campaigns)),
		journals:  make(map[string]*fault.Journal),
		workers:   make(map[string]*workerView),
		doneCh:    make(chan struct{}),
	}
	if opt.MasksFor != nil {
		c.masks = make([][]fault.Mask, len(cfg.Campaigns))
	}
	if cfg.StopMargin > 0 {
		c.adapt = make([]*cellControl, len(cfg.Campaigns))
		cadence := cfg.StopCheckEvery
		if cadence < 1 {
			cadence = adaptive.DefaultCheckEvery
		}
		for i := range cfg.Campaigns {
			est, err := adaptive.New(adaptive.Config{
				Margin:     cfg.StopMargin,
				Confidence: cfg.StopConfidence,
				CheckEvery: cfg.StopCheckEvery,
				Classes:    core.ClassStrings(),
			})
			if err != nil {
				return nil, err
			}
			c.adapt[i] = &cellControl{
				est: est, cadence: cadence, boundary: cadence,
				pend: make([]*core.ShardRun, cfg.MaskCount(i)),
			}
		}
	}
	total := 0
	size := opt.shardSize()
	for i := range cfg.Campaigns {
		n := cfg.MaskCount(i)
		total += n
		c.records[i] = make([]core.LogRecord, n)
		c.filled[i] = make([]bool, n)
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			c.shards = append(c.shards, &shardState{
				shard: Shard{ID: len(c.shards), Campaign: i, MaskLo: lo, MaskHi: hi},
			})
		}
	}
	c.remaining = len(c.shards)
	c.stats.Shards = len(c.shards)
	if tr := opt.Tracer; tr != nil {
		// The root span opens now and closes when the campaign finishes;
		// each shard's span ID is minted up front so workers can parent
		// their spans under it before the shard span itself is emitted.
		c.rootSpan = tr.Begin(telemetry.SpanCampaign, "campaign", "")
		for _, s := range c.shards {
			s.shard.TraceID = tr.TraceID()
			s.shard.SpanID = tr.NewSpanID()
		}
	}
	if tel := opt.Telemetry; tel != nil {
		// Worker pools live in the worker processes; the coordinator has
		// no pool of its own, so the utilization gauge stays off.
		tel.Start(0)
		tel.AddQueued(total)
		c.camps = make([]*telemetry.CampaignStats, len(cfg.Campaigns))
		for i, cell := range cfg.Campaigns {
			c.camps[i] = tel.Campaign(c.keys[i], cell.Tool, cell.Benchmark, cell.Structure)
		}
	}
	if opt.Resume {
		if err := c.resume(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// resume replays the durable run journals of a previous coordinator
// process into the exactly-once ledger. Journaled simulated runs commit
// through the same frontier machinery live merges use — so the adaptive
// stop decision re-derives from the real completions alone, at the
// identical boundary, regardless of where the crash fell — and journaled
// stop rows prefill the ledger without feeding the estimators. Shards
// whose whole window replayed never lease again, except that one shard
// per cell is kept queued while the cell's golden header is unknown: the
// journal carries no golden run, so one worker re-runs a shard (its rows
// dedup against the ledger) purely to re-supply the fault-free
// reference.
func (c *Coordinator) resume() error {
	if c.opt.JournalFor == nil {
		return fmt.Errorf("dist: resume requires CoordinatorOptions.JournalFor")
	}
	if c.opt.MasksFor == nil {
		return fmt.Errorf("dist: resume requires CoordinatorOptions.MasksFor to validate journaled masks")
	}
	c.journaled = make(map[string]map[int]bool)
	for i := range c.cfg.Campaigns {
		key := c.keys[i]
		jnl, err := c.opt.JournalFor(key)
		if err != nil {
			return fmt.Errorf("dist: opening journal for %s: %w", key, err)
		}
		c.journals[key] = jnl
		entries := jnl.Entries()
		if len(entries) == 0 {
			continue
		}
		masks, err := c.masksForLocked(i)
		if err != nil {
			return err
		}
		n := c.cfg.MaskCount(i)
		if len(masks) != n {
			return fmt.Errorf("dist: campaign %d: MasksFor returned %d masks, config promises %d", i, len(masks), n)
		}
		seen := make(map[int]bool, len(entries))
		c.journaled[key] = seen
		var ctl *cellControl
		if c.adapt != nil {
			ctl = c.adapt[i]
		}
		// Journal appends happen in commit order, which is mask order; the
		// sort defends replay determinism against hand-edited files.
		sorted := make([]fault.JournalEntry, len(entries))
		copy(sorted, entries)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].MaskID < sorted[b].MaskID })
		for _, e := range sorted {
			if e.MaskID < 0 || e.MaskID >= n {
				return fmt.Errorf("dist: journal for %s references mask %d outside population of %d", key, e.MaskID, n)
			}
			if seen[e.MaskID] {
				continue
			}
			var rec core.LogRecord
			if err := json.Unmarshal(e.Record, &rec); err != nil {
				return fmt.Errorf("dist: journal for %s mask %d: %w", key, e.MaskID, err)
			}
			if !reflect.DeepEqual(rec.Sites, masks[e.MaskID].Sites) {
				return fmt.Errorf("dist: stale journal for %s mask %d: the campaign's mask set changed", key, e.MaskID)
			}
			seen[e.MaskID] = true
			if e.StoppedEarly || rec.Status == core.RunStopped.String() {
				// Stop rows prefill the ledger but never feed the estimator:
				// if the decision re-derives, settleStopsLocked re-emits them
				// (flagged Resumed); trusting them directly could disagree
				// with a re-derived decision.
				c.records[i][e.MaskID] = rec
				c.filled[i][e.MaskID] = true
				continue
			}
			run := core.ShardRun{
				Index: e.MaskID, Record: rec,
				Observed: e.Observed, FirstObsCycle: e.FirstObsCycle, EarlyStop: e.EarlyStop,
				Resumed: true,
			}
			c.filled[i][e.MaskID] = true
			c.resumedRuns++
			if ctl != nil {
				r := run
				ctl.pend[e.MaskID] = &r
				continue
			}
			if err := c.commitRunLocked(i, run); err != nil {
				return err
			}
		}
		if ctl != nil {
			if err := c.advanceFrontierLocked(i, ctl); err != nil {
				return err
			}
		}
	}
	if c.adapt != nil {
		if err := c.settleStopsLocked(); err != nil {
			return err
		}
	}
	for i := range c.cfg.Campaigns {
		var full []*shardState
		partial := false
		for _, s := range c.shards {
			if s.shard.Campaign != i || s.state != shardQueued {
				continue
			}
			f := true
			for m := s.shard.MaskLo; m < s.shard.MaskHi; m++ {
				if !c.filled[i][m] {
					f = false
					break
				}
			}
			if f {
				full = append(full, s)
			} else {
				partial = true
			}
		}
		for k, s := range full {
			if k == 0 && !partial && !c.goldenSet[i] {
				continue // kept queued: a worker re-runs it for the golden header
			}
			s.state = shardCompleted
			c.remaining--
			c.stats.Completed++
		}
	}
	if c.resumedRuns > 0 {
		c.logf("dist: resumed %d journaled runs; %d/%d shards already complete", c.resumedRuns, c.stats.Completed, c.stats.Shards)
	}
	if c.remaining == 0 && c.failure == nil {
		if err := c.finalizeLocked(); err != nil {
			c.failLocked(err)
		} else {
			c.finishLocked()
		}
	}
	return nil
}

// ResumedRuns reports how many journaled runs the coordinator replayed
// at startup (zero unless Resume was set).
func (c *Coordinator) ResumedRuns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumedRuns
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Stats returns the current shard accounting.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// failLocked records the first terminal error and wakes Wait.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.finishLocked()
}

func (c *Coordinator) finishLocked() {
	if !c.finished {
		c.finished = true
		if c.rootSpan != nil {
			c.rootSpan.End()
		}
		close(c.doneCh)
	}
}

// workerLocked returns (creating if needed) a worker's view, stamping
// its last-contact time.
func (c *Coordinator) workerLocked(id string, now time.Time) *workerView {
	w, ok := c.workers[id]
	if !ok {
		w = &workerView{shard: -1}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// sweepLocked requeues the shards of workers that stopped heartbeating.
// Called on every lease and from Wait's ticker, so dead workers are
// noticed even when no one else asks for work.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, s := range c.shards {
		if s.state != shardLeased || s.expiry.After(now) {
			continue
		}
		s.retries++
		if s.retries > c.opt.maxRetries() {
			c.failLocked(fmt.Errorf("dist: shard %d (campaign %d masks [%d,%d)) lost its lease %d times; giving up",
				s.shard.ID, s.shard.Campaign, s.shard.MaskLo, s.shard.MaskHi, s.retries))
			return
		}
		c.logf("dist: shard %d lease by %s expired; requeued (retry %d)", s.shard.ID, s.worker, s.retries)
		s.state = shardQueued
		s.worker = ""
		s.eligible = now.Add(time.Duration(s.retries) * c.opt.retryBackoff())
		c.stats.Requeues++
	}
}

// Config returns the campaign config response served at /v1/config.
// The service overlays CampaignID before forwarding it.
func (c *Coordinator) Config() ConfigResponse {
	return ConfigResponse{
		ProtocolVersion: ProtocolVersion,
		Config:          c.cfg,
		LeaseTTLMS:      c.opt.leaseTTL().Milliseconds(),
	}
}

// Cancel terminates the campaign: every outstanding shard is retired
// (queued ones never lease again; a holder's next heartbeat reports the
// lease lost, and a late completion dedups) and Wait returns an error
// wrapping ErrCancelled. Idempotent; a no-op once the campaign finished.
func (c *Coordinator) Cancel(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return
	}
	if reason == "" {
		reason = "cancelled"
	}
	for _, s := range c.shards {
		if s.state == shardCompleted {
			continue
		}
		s.state = shardCompleted
		s.worker = ""
		c.remaining--
		c.stats.Cancelled++
	}
	c.failLocked(fmt.Errorf("%w: %s", ErrCancelled, reason))
}

// Lease grants a shard (or a wait/terminal status) to a polling worker.
func (c *Coordinator) Lease(workerID string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.now()
	w := c.workerLocked(workerID, now)
	w.shard = -1 // a polling worker is idle until a grant below
	c.sweepLocked(now)
	if c.failure != nil {
		return LeaseResponse{Status: StatusFailed, Error: c.failure.Error()}
	}
	if c.remaining == 0 {
		return LeaseResponse{Status: StatusDone}
	}
	var nearest time.Time
	for _, s := range c.shards {
		switch s.state {
		case shardQueued:
			if !s.eligible.After(now) {
				s.state = shardLeased
				s.worker = workerID
				s.expiry = now.Add(c.opt.leaseTTL())
				s.leased = now
				w.shard = s.shard.ID
				c.logf("dist: shard %d leased to %s", s.shard.ID, workerID)
				sh := s.shard
				return LeaseResponse{Status: StatusShard, Shard: &sh}
			}
			if nearest.IsZero() || s.eligible.Before(nearest) {
				nearest = s.eligible
			}
		case shardLeased:
			if nearest.IsZero() || s.expiry.Before(nearest) {
				nearest = s.expiry
			}
		}
	}
	wait := time.Second
	if !nearest.IsZero() {
		wait = nearest.Sub(now)
	}
	if wait < 50*time.Millisecond {
		wait = 50 * time.Millisecond
	}
	if wait > time.Second {
		wait = time.Second
	}
	return LeaseResponse{Status: StatusWait, WaitMS: wait.Milliseconds()}
}

// Heartbeat extends a worker's shard lease.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.ShardID < 0 || req.ShardID >= len(c.shards) {
		return HeartbeatResponse{}
	}
	s := c.shards[req.ShardID]
	now := c.opt.now()
	w := c.workerLocked(req.WorkerID, now)
	if s.state != shardLeased || s.worker != req.WorkerID || !s.expiry.After(now) {
		return HeartbeatResponse{}
	}
	s.expiry = now.Add(c.opt.leaseTTL())
	w.shard = req.ShardID
	return HeartbeatResponse{OK: true}
}

// ackLocked stamps the campaign's terminal state onto a completion ack
// so the delivering worker never needs a post-completion lease poll —
// which would race the coordinator's shutdown once the last shard lands.
func (c *Coordinator) ackLocked(r CompleteResponse) CompleteResponse {
	if c.failure != nil {
		r.Failed = c.failure.Error()
	} else if c.finished {
		r.Done = true
	}
	return r
}

// Complete accepts a shard completion and merges its result.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.ShardID < 0 || req.ShardID >= len(c.shards) {
		return CompleteResponse{Error: fmt.Sprintf("dist: no shard %d", req.ShardID)}
	}
	s := c.shards[req.ShardID]
	w := c.workerLocked(req.WorkerID, c.opt.now())
	w.shard = -1
	if req.Snapshot != nil && !w.final {
		// Piggybacked telemetry: freshest view of this worker, unless it
		// already posted its final word via /v1/snapshot.
		w.snap = req.Snapshot
	}
	if req.Error != "" {
		// Shard execution is deterministic: the same masks would fail the
		// same way on any worker, so a reported error fails the campaign.
		c.failLocked(fmt.Errorf("dist: worker %s failed shard %d (campaign %d masks [%d,%d)): %s",
			req.WorkerID, s.shard.ID, s.shard.Campaign, s.shard.MaskLo, s.shard.MaskHi, req.Error))
		return c.ackLocked(CompleteResponse{OK: true})
	}
	if s.state == shardCompleted {
		// A requeued shard finished twice (the original worker was slow,
		// not dead). The late copy is byte-identical by determinism;
		// discard it — the per-mask ledger stays exactly-once.
		c.stats.Duplicates++
		c.logf("dist: duplicate completion of shard %d by %s discarded", s.shard.ID, req.WorkerID)
		return c.ackLocked(CompleteResponse{OK: true})
	}
	mergeStart := time.Now()
	if err := c.mergeLocked(s.shard, req.Result); err != nil {
		c.failLocked(err)
		return c.ackLocked(CompleteResponse{OK: true})
	}
	s.state = shardCompleted
	s.worker = req.WorkerID
	w.done++
	c.remaining--
	c.stats.Completed++
	if tr := c.opt.Tracer; tr != nil {
		// Worker spans first (they are the shard span's subtree), then
		// the coordinator-side merge phase, then the shard span itself —
		// its ID was pre-minted at plan time so the subtree already
		// parents correctly.
		for _, sp := range req.Spans {
			tr.Forward(sp)
		}
		end := time.Now()
		tr.Emit(telemetry.Span{
			SpanID: tr.NewSpanID(), ParentID: s.shard.SpanID,
			Kind: telemetry.SpanPhase, Name: "merge", Worker: req.WorkerID,
			StartUnixNS: mergeStart.UnixNano(), EndUnixNS: end.UnixNano(),
		})
		tr.Emit(telemetry.Span{
			SpanID: s.shard.SpanID, ParentID: c.rootSpan.ID(),
			Kind: telemetry.SpanShard, Name: fmt.Sprintf("shard-%d", s.shard.ID), Worker: req.WorkerID,
			StartUnixNS: s.leased.UnixNano(), EndUnixNS: end.UnixNano(),
		})
	}
	c.logf("dist: shard %d completed by %s (%d/%d)", s.shard.ID, req.WorkerID, c.stats.Completed, c.stats.Shards)
	if c.adapt != nil {
		// A merge may have fired a cell's stopping rule; settle the
		// cancelled masks and shards after this shard's own bookkeeping so
		// the cancellation sweep never double-counts it.
		if err := c.settleStopsLocked(); err != nil {
			c.failLocked(err)
			return c.ackLocked(CompleteResponse{OK: true})
		}
	}
	if c.remaining == 0 && c.failure == nil {
		if err := c.finalizeLocked(); err != nil {
			c.failLocked(err)
		} else {
			c.finishLocked()
		}
	}
	return c.ackLocked(CompleteResponse{OK: true, Accepted: true})
}

// mergeLocked folds one shard result into the per-campaign record
// arrays, journals its simulated runs, and re-emits its run-end events
// through the coordinator's collector — the same events, with the same
// provenance, a single-node run would have emitted for these masks.
func (c *Coordinator) mergeLocked(sh Shard, res *core.ShardResult) error {
	if res == nil {
		return fmt.Errorf("dist: shard %d completed without a result", sh.ID)
	}
	if len(res.Runs) != sh.MaskHi-sh.MaskLo {
		return fmt.Errorf("dist: shard %d returned %d runs for window [%d,%d)", sh.ID, len(res.Runs), sh.MaskLo, sh.MaskHi)
	}
	i := sh.Campaign
	if !c.goldenSet[i] {
		c.goldens[i] = res.Golden
		c.goldenSet[i] = true
	} else if !reflect.DeepEqual(c.goldens[i], res.Golden) {
		// Deterministic simulators must agree on the fault-free reference;
		// a mismatch means the fleet runs divergent builds.
		return fmt.Errorf("dist: shard %d golden header disagrees with campaign %d's (mixed worker builds?)", sh.ID, i)
	}
	var ctl *cellControl
	if c.adapt != nil {
		ctl = c.adapt[i]
	}
	for _, run := range res.Runs {
		if run.Index < sh.MaskLo || run.Index >= sh.MaskHi {
			return fmt.Errorf("dist: shard %d returned mask index %d outside window [%d,%d)", sh.ID, run.Index, sh.MaskLo, sh.MaskHi)
		}
		if c.filled[i][run.Index] {
			continue // exactly-once ledger: an overlapping row merges once
		}
		c.filled[i][run.Index] = true
		if ctl != nil && !ctl.settled {
			// Adaptive cells commit in mask order through the frontier
			// below, never directly — merge order must not influence the
			// stop decision or the artifact byte streams.
			r := run
			ctl.pend[run.Index] = &r
			continue
		}
		// A settled cell's frontier is resolved: the only unfilled masks
		// left are pruned/replicated holes a resumed coordinator could not
		// replay from the journal, and they commit directly.
		if err := c.commitRunLocked(i, run); err != nil {
			return err
		}
	}
	if ctl != nil && !ctl.stopped {
		return c.advanceFrontierLocked(i, ctl)
	}
	return nil
}

// commitRunLocked folds one merged row into the ledger: replicas defer
// to finalize, simulated rows journal, and every committed row lands in
// the record array, the divergence sink and the telemetry stream.
func (c *Coordinator) commitRunLocked(i int, run core.ShardRun) error {
	switch run.Pruned {
	case "replicated":
		c.replicas = append(c.replicas, pendingReplica{
			campaign: i, index: run.Index, rep: run.RepIndex,
			maskID: run.Record.MaskID, sites: run.Record.Sites,
		})
		return nil // verdict copied from the representative at finalize
	case "":
		// Only simulated runs reach the journal — the same rows a
		// single-node -journal campaign acknowledges.
		if c.opt.JournalFor != nil {
			if err := c.journalLocked(c.keys[i], run); err != nil {
				return err
			}
		}
	}
	c.records[i][run.Index] = run.Record
	if c.opt.Divergence != nil {
		c.opt.Divergence.Add(run.DivergenceRecord(c.keys[i]))
	}
	c.emitLocked(i, run, run.Pruned, -1)
	return nil
}

// advanceFrontierLocked commits the contiguous prefix of buffered rows
// of one adaptive cell, feeding each simulated run to the estimator and
// evaluating the stopping rule exactly when the simulated count reaches
// a boundary. A decision with the whole population already committed is
// not a stop — there is nothing left to cancel, matching the scheduler's
// final-boundary rule. (One deliberate asymmetry: the coordinator cannot
// know whether the not-yet-merged tail contains any simulated masks, so
// a decision landing exactly on the cell's final simulated run while
// only pruned masks remain unmerged settles that pruned tail as stopped
// rows, where a single-node run would have filled them from the plan.)
func (c *Coordinator) advanceFrontierLocked(i int, ctl *cellControl) error {
	n := len(ctl.pend)
	for ctl.frontier < n && ctl.pend[ctl.frontier] != nil {
		run := *ctl.pend[ctl.frontier]
		if err := c.commitRunLocked(i, run); err != nil {
			return err
		}
		ctl.pend[ctl.frontier] = nil
		ctl.frontier++
		if run.Pruned != "" {
			continue
		}
		cls, _ := (core.Parser{}).Classify(run.Record)
		ctl.est.Add(string(cls))
		ctl.sim++
		if ctl.sim == ctl.boundary {
			if ctl.est.Decided() && ctl.frontier < n {
				ctl.stopped = true
				ctl.finalMargin = ctl.est.EffectiveMargin()
				return nil
			}
			ctl.boundary += ctl.cadence
		}
	}
	return nil
}

// masksForLocked memoizes the MasksFor population of one cell.
func (c *Coordinator) masksForLocked(i int) ([]fault.Mask, error) {
	if c.masks[i] != nil {
		return c.masks[i], nil
	}
	m, err := c.opt.MasksFor(i)
	if err != nil {
		return nil, fmt.Errorf("dist: materializing campaign %d's masks: %w", i, err)
	}
	c.masks[i] = m
	return m, nil
}

// settleStopsLocked converts every undecided mask of a freshly stopped
// cell into a stopped-early provenance row (journal, records, divergence
// and telemetry, exactly as the single-node settle pass) and cancels the
// cell's outstanding shards: queued ones never lease again, and a late
// completion from a still-running worker is discarded as a duplicate by
// the exactly-once ledger.
func (c *Coordinator) settleStopsLocked() error {
	for i, ctl := range c.adapt {
		if ctl == nil || !ctl.stopped || ctl.settled {
			continue
		}
		ctl.settled = true
		masks, err := c.masksForLocked(i)
		if err != nil {
			return err
		}
		n := len(ctl.pend)
		if len(masks) != n {
			return fmt.Errorf("dist: campaign %d: MasksFor returned %d masks, config promises %d", i, len(masks), n)
		}
		key := c.keys[i]
		cell := c.cfg.Campaigns[i]
		for idx := ctl.frontier; idx < n; idx++ {
			m := masks[idx]
			rec := core.LogRecord{MaskID: m.ID, Sites: m.Sites, Status: core.RunStopped.String(), Weight: m.Weight}
			// A resumed coordinator may have replayed this stop row from
			// the journal; the re-derived decision settles it again with
			// identical content, flagged Resumed like any replayed run.
			resumed := c.journaled[key][rec.MaskID]
			c.records[i][idx] = rec
			c.filled[i][idx] = true
			ctl.pend[idx] = nil
			if c.opt.JournalFor != nil {
				if err := c.journalStoppedLocked(key, rec); err != nil {
					return err
				}
			}
			if c.opt.Divergence != nil {
				c.opt.Divergence.Add(core.ShardRun{Index: idx, Record: rec, Resumed: resumed}.DivergenceRecord(key))
			}
			if tel := c.opt.Telemetry; tel != nil {
				tel.RunStarted()
				tel.RunDone(c.camps[i], telemetry.RunEvent{
					Campaign: key, Tool: cell.Tool, Benchmark: cell.Benchmark, Structure: cell.Structure,
					MaskID: rec.MaskID, Sites: rec.Sites, Status: rec.Status,
					Class: string(core.ClassStopped), Stopped: true, Resumed: resumed, Weight: rec.Weight,
				})
			}
		}
		if tel := c.opt.Telemetry; tel != nil {
			tel.CellStopped(ctl.finalMargin)
		}
		// The cancellation sweep retires the cell's outstanding shards —
		// except, on a resumed coordinator that has never heard from a
		// worker for this cell, one shard stays queued so a worker can
		// re-supply the golden header the journal does not carry.
		keep := -1
		if !c.goldenSet[i] {
			for _, s := range c.shards {
				if s.shard.Campaign == i && s.state != shardCompleted {
					keep = s.shard.ID
					break
				}
			}
		}
		cancelled := 0
		for _, s := range c.shards {
			if s.shard.Campaign != i || s.state == shardCompleted || s.shard.ID == keep {
				continue
			}
			s.state = shardCompleted
			s.worker = ""
			c.remaining--
			c.stats.Cancelled++
			cancelled++
		}
		c.logf("dist: campaign %d stopped early after %d simulated runs (margin %.4f); %d shards cancelled",
			i, ctl.sim, ctl.finalMargin, cancelled)
	}
	return nil
}

func (c *Coordinator) journalStoppedLocked(key string, rec core.LogRecord) error {
	if c.journaled[key][rec.MaskID] {
		return nil // replayed from this journal; the entry is already on disk
	}
	jnl, ok := c.journals[key]
	if !ok {
		var err error
		if jnl, err = c.opt.JournalFor(key); err != nil {
			return fmt.Errorf("dist: opening journal for %s: %w", key, err)
		}
		c.journals[key] = jnl
	}
	raw, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("dist: journaling %s stopped mask %d: %w", key, rec.MaskID, err)
	}
	return jnl.Append(fault.JournalEntry{
		Campaign: key, MaskID: rec.MaskID, Record: raw, StoppedEarly: true,
	})
}

func (c *Coordinator) journalLocked(key string, run core.ShardRun) error {
	if c.journaled[key][run.Record.MaskID] {
		return nil // replayed from this journal; the entry is already on disk
	}
	jnl, ok := c.journals[key]
	if !ok {
		var err error
		if jnl, err = c.opt.JournalFor(key); err != nil {
			return fmt.Errorf("dist: opening journal for %s: %w", key, err)
		}
		c.journals[key] = jnl
	}
	raw, err := json.Marshal(&run.Record)
	if err != nil {
		return fmt.Errorf("dist: journaling %s mask %d: %w", key, run.Record.MaskID, err)
	}
	return jnl.Append(fault.JournalEntry{
		Campaign: key, MaskID: run.Record.MaskID, Record: raw,
		Observed: run.Observed, FirstObsCycle: run.FirstObsCycle, EarlyStop: run.EarlyStop,
	})
}

// emitLocked synthesizes the run-end telemetry event of one merged row.
func (c *Coordinator) emitLocked(i int, run core.ShardRun, pruned string, repMask int) {
	if tel := c.opt.Telemetry; tel != nil {
		emitShardRun(tel, c.camps[i], c.keys[i], run, pruned, repMask)
	}
}

// emitShardRun re-emits the run-end telemetry event of one ShardRun
// through a collector — the same event, with the same provenance, a
// single-node run would have emitted for that mask. Shared by the
// coordinator's merge and a worker's post-acceptance fold.
func emitShardRun(tel *telemetry.Collector, cs *telemetry.CampaignStats, key string, run core.ShardRun, pruned string, repMask int) {
	cls, _ := (core.Parser{}).Classify(run.Record)
	tel.RunStarted()
	tel.RunDone(cs, telemetry.RunEvent{
		Campaign:       key,
		Tool:           cs.Tool,
		Benchmark:      cs.Benchmark,
		Structure:      cs.Structure,
		MaskID:         run.Record.MaskID,
		Sites:          run.Record.Sites,
		Status:         run.Record.Status,
		Class:          string(cls),
		Cycles:         run.Record.Cycles,
		Wall:           time.Duration(run.WallNS),
		Observed:       run.Observed,
		FirstObsCycle:  run.FirstObsCycle,
		EarlyStop:      run.EarlyStop,
		WatchedReads:   run.WatchedReads,
		WatchedWrites:  run.WatchedWrites,
		ObservedReads:  run.ObservedReads,
		ObservedWrites: run.ObservedWrites,
		LadderRestored: run.LadderRestored,
		RungCycle:      run.RungCycle,
		Windowed:       run.Windowed,
		WindowEntered:  run.WindowEntered,
		WindowExited:   run.WindowExited,
		FastSteps:      run.FastSteps,
		DetailCycles:   run.DetailCycles,
		Diverged:       run.Diverged,
		Pruned:         pruned,
		RepMask:        repMask,
		Resumed:        run.Resumed,
		Stopped:        run.Record.Status == core.RunStopped.String(),
		Weight:         run.Record.Weight,
	})
}

// finalizeLocked resolves replicated rows against their merged
// representatives — copying the representative's record and restamping
// the mask identity, exactly as the single-node plan fill-in does —
// then checks the per-mask ledger is complete and builds the results.
func (c *Coordinator) finalizeLocked() error {
	for _, r := range c.replicas {
		if !c.filled[r.campaign][r.rep] {
			return fmt.Errorf("dist: campaign %d mask %d replicates mask %d, which never completed", r.campaign, r.index, r.rep)
		}
		rep := c.records[r.campaign][r.rep]
		repMask := rep.MaskID
		rec := rep
		rec.MaskID = r.maskID
		rec.Sites = r.sites
		c.records[r.campaign][r.index] = rec
		if c.opt.Divergence != nil {
			c.opt.Divergence.Add(core.ShardRun{Record: rec, Pruned: "replicated"}.DivergenceRecord(c.keys[r.campaign]))
		}
		c.emitLocked(r.campaign, core.ShardRun{Index: r.index, Record: rec}, "replicated", repMask)
	}
	for i := range c.records {
		for m, ok := range c.filled[i] {
			if !ok {
				return fmt.Errorf("dist: campaign %d mask %d never completed despite all shards reporting", i, m)
			}
		}
	}
	c.results = make([]*core.CampaignResult, len(c.records))
	for i := range c.records {
		c.results[i] = &core.CampaignResult{Golden: c.goldens[i], Records: c.records[i]}
		if c.adapt == nil || c.adapt[i] == nil || c.adapt[i].sim == 0 {
			continue
		}
		ctl := c.adapt[i]
		// PlannedRuns: for a stopped cell the plan actions of the
		// cancelled tail were never computed (no worker ran those masks),
		// so the mask budget stands in for the simulated-run budget a
		// single-node result reports.
		info := &core.AdaptiveInfo{
			StoppedEarly:    ctl.stopped,
			SimulatedRuns:   ctl.sim,
			PlannedRuns:     ctl.sim,
			EffectiveMargin: ctl.est.EffectiveMargin(),
			Confidence:      c.cfg.StopConfidence,
		}
		if ctl.stopped {
			info.PlannedRuns = len(c.records[i])
			info.EffectiveMargin = ctl.finalMargin
		} else if tel := c.opt.Telemetry; tel != nil {
			tel.ObserveCellMargin(info.EffectiveMargin)
		}
		c.results[i].Adaptive = info
	}
	return nil
}

// PushSnapshot accepts a worker's pushed telemetry snapshot. A Final
// push (a draining worker's last word) freezes the view: later
// piggybacked snapshots from in-flight completions cannot roll it back.
func (c *Coordinator) PushSnapshot(req SnapshotRequest) SnapshotResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(req.WorkerID, c.opt.now())
	if !w.final {
		snap := req.Snapshot
		w.snap = &snap
		if req.Final {
			w.final = true
			w.shard = -1
		}
	}
	return SnapshotResponse{OK: true}
}

// FleetSnapshot merges every worker's last pushed snapshot into one
// fleet-wide view — the aggregation behind /snapshot.json and /metrics.
// The coordinator's own collector is deliberately not folded in: it
// re-emits the same runs the workers already counted, so adding it
// would double every counter.
func (c *Coordinator) FleetSnapshot() telemetry.Snapshot {
	c.mu.Lock()
	ids := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if w.snap != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	snaps := make([]telemetry.Snapshot, 0, len(ids))
	for _, id := range ids {
		snaps = append(snaps, *c.workers[id].snap)
	}
	c.mu.Unlock()
	merged := telemetry.MergeSnapshots(snaps...)
	// The early-stop counters live coordinator-side only — workers never
	// see a stopped run, so overlaying them cannot double-count. (The
	// rest of the coordinator's collector re-emits runs the workers
	// already counted and stays excluded.)
	if tel := c.opt.Telemetry; tel != nil && c.adapt != nil {
		own := tel.Snapshot()
		merged.StoppedRuns += own.StoppedRuns
		merged.CellsStoppedEarly += own.CellsStoppedEarly
		if own.EffectiveMargin > merged.EffectiveMargin {
			merged.EffectiveMargin = own.EffectiveMargin
		}
	}
	return merged
}

// Fleet returns the per-worker views, sorted by worker ID.
func (c *Coordinator) Fleet() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.now()
	out := make([]WorkerStatus, 0, len(c.workers))
	for id, w := range c.workers {
		lag := now.Sub(w.lastSeen).Seconds()
		if lag < 0 {
			lag = 0
		}
		out = append(out, WorkerStatus{ID: id, Shard: w.shard, ShardsDone: w.done, LagSeconds: lag, Final: w.final})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ProgressLine renders the coordinator's merged progress view plus one
// bracketed column per worker: its leased shard, shards done, and how
// long since it last checked in.
func (c *Coordinator) ProgressLine() string {
	tel := c.opt.Telemetry
	if tel == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(tel.Snapshot().ProgressLine())
	for _, w := range c.Fleet() {
		shard := "-"
		if w.Shard >= 0 {
			shard = strconv.Itoa(w.Shard)
		}
		fmt.Fprintf(&b, "  [%s shard=%s done=%d lag=%.0fs]", w.ID, shard, w.ShardsDone, w.LagSeconds)
	}
	return b.String()
}

// WaitFleetFinal blocks until every worker that ever pushed telemetry
// has posted its final snapshot, or timeout elapses (a crashed worker
// never posts one). The campaign completes when the last shard merges,
// which can be moments before the delivering worker's final snapshot
// arrives — callers that freeze the fleet snapshot to disk wait here
// first.
func (c *Coordinator) WaitFleetFinal(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		all := true
		for _, w := range c.workers {
			if w.snap != nil && !w.final {
				all = false
				break
			}
		}
		c.mu.Unlock()
		if all {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Wait blocks until every shard has completed (returning the merged
// per-campaign results, in config cell order) or the campaign fails.
// It also drives the lease sweep, so dead workers are requeued even
// when no live worker is polling.
func (c *Coordinator) Wait(ctx context.Context) ([]*core.CampaignResult, error) {
	tick := c.opt.leaseTTL() / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.doneCh:
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.failure != nil {
				return nil, c.failure
			}
			return c.results, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
			c.mu.Lock()
			c.sweepLocked(c.opt.now())
			c.mu.Unlock()
		}
	}
}

// Close closes the journals the coordinator opened.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, j := range c.journals {
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.journals = map[string]*fault.Journal{}
	return first
}

// Handler returns the /v1 protocol endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/config", MethodOnly(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Config())
	}))
	mux.HandleFunc("/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Lease(req.WorkerID))
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Heartbeat(req))
	})
	mux.HandleFunc("/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.Complete(req))
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		var req SnapshotRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, c.PushSnapshot(req))
	})
	return mux
}

// ObsHandler returns the coordinator's observability endpoints mounted
// alongside the /v1 protocol: /v1/snapshot.json and /v1/metrics serve
// the fleet-aggregated telemetry, /v1/fleet.json the per-worker
// lease/lag accounting, and /v1/events — when an event stream is
// attached — the live SSE feed of progress, run and span events. The
// unprefixed paths remain as deprecated aliases for one release so old
// dashboards and probes keep working.
func (c *Coordinator) ObsHandler(es *telemetry.EventStream) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", c.Handler())
	MountObs(mux, ObsEndpoints{
		Snapshot: c.FleetSnapshot,
		Fleet: func() []WorkerStatus {
			return c.Fleet()
		},
		Events: es,
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no such endpoint: %s", r.URL.Path)
			return
		}
		fmt.Fprintln(w, "faultcampd: /v1/{config,lease,heartbeat,complete,snapshot}  /v1/{snapshot.json,metrics,fleet.json,events}  (unprefixed observability paths are deprecated aliases)")
	})
	return mux
}

// ObsEndpoints are the data sources behind the observability plane —
// shared by the single-campaign coordinator and the multi-campaign
// service, which each mount them over their own aggregation.
type ObsEndpoints struct {
	Snapshot func() telemetry.Snapshot
	Fleet    func() []WorkerStatus
	Events   http.Handler // nil when no event stream is attached
}

// MountObs registers the telemetry endpoints on a mux under /v1/ and,
// as deprecated aliases for one release, at the unprefixed paths.
func MountObs(mux *http.ServeMux, eps ObsEndpoints) {
	snap := MethodOnly(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		b, err := eps.Snapshot().JSON()
		if err != nil {
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	})
	metrics := MethodOnly(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		eps.Snapshot().WritePrometheus(w)
	})
	fleet := MethodOnly(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eps.Fleet())
	})
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc(prefix+"/snapshot.json", snap)
		mux.HandleFunc(prefix+"/metrics", metrics)
		mux.HandleFunc(prefix+"/fleet.json", fleet)
		if eps.Events != nil {
			mux.Handle(prefix+"/events", MethodOnly(http.MethodGet, eps.Events.ServeHTTP))
		}
	}
}

// MethodOnly wraps a handler with a method check that answers the
// shared error envelope on mismatch.
func MethodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "%s only", method)
			return
		}
		h(w, r)
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return api.ReadJSON(w, r, v)
}

func writeJSON(w http.ResponseWriter, v any) {
	api.WriteJSON(w, v)
}
