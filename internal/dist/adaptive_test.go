package dist_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// adaptiveConfig is the early-stopping matrix of the distributed
// differential: the 25pp/99% rule decides at the first boundary (25 of
// 60 runs) in every cell, so each fleet must cancel the same tail.
func adaptiveConfig() core.CampaignConfig {
	cfg := testConfig()
	cfg.Injections = 60
	cfg.StopMargin = 0.25
	cfg.StopConfidence = 0.99
	cfg.StopCheckEvery = 25
	return cfg
}

// masksFor builds the coordinator-side mask populations exactly as
// cmd/faultcampd wires it: one deterministic BuildSpecs pass.
func masksFor(cfg core.CampaignConfig) func(int) ([]fault.Mask, error) {
	cache := core.NewGoldenCache()
	return func(campaign int) ([]fault.Mask, error) {
		specs, err := cfg.BuildSpecs(cli.Resolve, cache)
		if err != nil {
			return nil, err
		}
		return specs[campaign].Masks, nil
	}
}

// TestDistributedAdaptiveDifferential runs the adaptive matrix across
// 1, 2 and 4 workers and asserts each fleet stops every cell at the
// identical point with logs, trace, journal ledger and adaptive info
// matching the single-node run — worker count, shard interleaving and
// merge timing must not move the decision.
func TestDistributedAdaptiveDifferential(t *testing.T) {
	cfg := adaptiveConfig()
	keys := cfg.Keys()
	wantLogs, wantTrace := runSingleNode(t, cfg)

	for _, workers := range []int{1, 2, 4} {
		collector := telemetry.New()
		sink := telemetry.NewTraceSink()
		collector.AddSink(sink)
		logsDir := t.TempDir()
		logs, err := core.NewLogsRepo(logsDir)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := dist.New(cfg, dist.CoordinatorOptions{
			ShardSize: 10,
			Telemetry: collector,
			MasksFor:  masksFor(cfg),
			JournalFor: func(k string) (*fault.Journal, error) {
				return fault.OpenJournal(logs.JournalPath(k))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(coord.Handler())

		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
					ID:      fmt.Sprintf("w%d", w),
					Resolve: cli.Resolve,
					Golden:  core.NewGoldenCache(),
				})
			}(w)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		results, err := coord.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: coordinator: %v", workers, err)
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				t.Fatalf("workers=%d: worker: %v", workers, err)
			}
		}
		gotLogs, gotTrace := storeAndRead(t, cfg, results, sink)
		srv.Close()
		coord.Close()

		for key, want := range wantLogs {
			if !bytes.Equal(gotLogs[key], want) {
				t.Fatalf("workers=%d: merged log %s differs from single-node\n--- distributed\n%s--- single-node\n%s",
					workers, key, gotLogs[key], want)
			}
		}
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("workers=%d: merged trace differs from single-node\n--- distributed\n%s--- single-node\n%s",
				workers, gotTrace, wantTrace)
		}
		for i, res := range results {
			a := res.Adaptive
			if a == nil || !a.StoppedEarly || a.SimulatedRuns != 25 {
				t.Fatalf("workers=%d: cell %d adaptive info %+v, want a stop at 25 runs", workers, i, a)
			}
			if len(res.Records) != 60 {
				t.Fatalf("workers=%d: cell %d settled %d of 60 masks", workers, i, len(res.Records))
			}
		}
		st := coord.Stats()
		if st.Cancelled == 0 {
			t.Fatalf("workers=%d: no shards cancelled by the stop decisions: %+v", workers, st)
		}
		// The ledger is exactly-once across real and stopped rows: every
		// mask journaled once, the cancelled tail flagged as provenance.
		for _, key := range keys {
			seen := make(map[int]int)
			stopped := 0
			f, err := os.Open(logs.JournalPath(key))
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				var e fault.JournalEntry
				if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
					t.Fatalf("workers=%d: journal %s: %v", workers, key, err)
				}
				var rec core.LogRecord
				if err := json.Unmarshal(e.Record, &rec); err != nil {
					t.Fatal(err)
				}
				seen[rec.MaskID]++
				if e.StoppedEarly {
					stopped++
				}
			}
			f.Close()
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if len(seen) != 60 {
				t.Fatalf("workers=%d: journal %s covers %d of 60 masks", workers, key, len(seen))
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("workers=%d: journal %s has %d entries for mask %d", workers, key, n, id)
				}
			}
			if stopped != 35 {
				t.Fatalf("workers=%d: journal %s has %d stopped-early entries, want 35", workers, key, stopped)
			}
		}
		snap := coord.FleetSnapshot()
		if snap.CellsStoppedEarly != uint64(len(keys)) || snap.StoppedRuns != uint64(35*len(keys)) {
			t.Fatalf("workers=%d: fleet snapshot counts cells=%d runs=%d, want %d/%d",
				workers, snap.CellsStoppedEarly, snap.StoppedRuns, len(keys), 35*len(keys))
		}
	}
}

// The coordinator owns the stop decision, so configurations it cannot
// arbitrate are rejected at construction.
func TestDistributedAdaptiveRejections(t *testing.T) {
	cfg := adaptiveConfig()
	if _, err := dist.New(cfg, dist.CoordinatorOptions{ShardSize: 10}); err == nil {
		t.Fatal("coordinator accepted an adaptive config without MasksFor")
	}
	ex := testConfig()
	ex.Injections = 0
	ex.Exhaustive = true
	if _, err := dist.New(ex, dist.CoordinatorOptions{ShardSize: 10, MasksFor: masksFor(ex)}); err == nil {
		t.Fatal("coordinator accepted an exhaustive config (no fixed shard geometry)")
	}
}
