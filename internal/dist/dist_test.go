package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// testConfig is the shared matrix of the differential tests: two
// structures of one {tool, benchmark} row, small enough to run in
// seconds, big enough to shard.
func testConfig() core.CampaignConfig {
	return core.CampaignConfig{
		Campaigns: []core.CampaignCell{
			{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"},
			{Tool: "gefin-x86", Benchmark: "qsort", Structure: "lsq.data"},
		},
		Injections: 10,
		Seed:       7,
	}
}

// runSingleNode is the reference semantics: one RunConfig call, logs
// stored per campaign, trace flushed from a collector-attached sink.
func runSingleNode(t *testing.T, cfg core.CampaignConfig) (map[string][]byte, []byte) {
	t.Helper()
	collector := telemetry.New()
	sink := telemetry.NewTraceSink()
	collector.AddSink(sink)
	results, err := core.RunConfig(cfg, cli.Resolve, core.Attach{
		Golden: core.NewGoldenCache(), Telemetry: collector,
	})
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	return storeAndRead(t, cfg, results, sink)
}

func storeAndRead(t *testing.T, cfg core.CampaignConfig, results []*core.CampaignResult, sink *telemetry.TraceSink) (map[string][]byte, []byte) {
	t.Helper()
	logs, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte)
	for i, key := range cfg.Keys() {
		if err := logs.Store(key, results[i]); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(logs.Dir(), key+".log.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		out[key] = b
	}
	var trace bytes.Buffer
	if err := sink.Flush(&trace); err != nil {
		t.Fatal(err)
	}
	return out, trace.Bytes()
}

// runDistributed executes cfg through a coordinator and n in-process
// workers, returning the merged logs/trace bytes and shard accounting.
func runDistributed(t *testing.T, cfg core.CampaignConfig, workers, shardSize int) (map[string][]byte, []byte, dist.Stats) {
	t.Helper()
	collector := telemetry.New()
	sink := telemetry.NewTraceSink()
	collector.AddSink(sink)
	coord, err := dist.New(cfg, dist.CoordinatorOptions{
		ShardSize: shardSize,
		Telemetry: collector,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
				ID:      fmt.Sprintf("w%d", w),
				Resolve: cli.Resolve,
				Golden:  core.NewGoldenCache(),
			})
		}(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	results, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	logs, trace := storeAndRead(t, cfg, results, sink)
	return logs, trace, coord.Stats()
}

// TestDistributedMatrixDifferential is the acceptance differential: a
// matrix distributed across 1, 2 and 4 workers must produce logs and a
// trace byte-identical to a single-node run of the same config — plain,
// and with pruning plus the checkpoint ladder composed in.
func TestDistributedMatrixDifferential(t *testing.T) {
	variants := []struct {
		name string
		mut  func(*core.CampaignConfig)
	}{
		{"plain", func(*core.CampaignConfig) {}},
		{"prune+ladder", func(c *core.CampaignConfig) {
			c.Prune = true
			c.PruneVerify = 2
			c.UseCheckpoint = true
			c.CheckpointLadder = 3
		}},
		{"window", func(c *core.CampaignConfig) {
			c.DetailWindow = true
			c.WindowPre = 2000
			c.WindowPost = 1000
			c.WindowVerify = 2
		}},
		{"window+prune+ladder", func(c *core.CampaignConfig) {
			c.DetailWindow = true
			c.WindowPre = 2000
			c.WindowPost = 1000
			c.Prune = true
			c.UseCheckpoint = true
			c.CheckpointLadder = 3
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := testConfig()
			v.mut(&cfg)
			wantLogs, wantTrace := runSingleNode(t, cfg)
			for _, workers := range []int{1, 2, 4} {
				gotLogs, gotTrace, st := runDistributed(t, cfg, workers, 3)
				if st.Completed != st.Shards {
					t.Fatalf("workers=%d: %d of %d shards completed", workers, st.Completed, st.Shards)
				}
				for key, want := range wantLogs {
					if !bytes.Equal(gotLogs[key], want) {
						t.Fatalf("workers=%d: merged log %s differs from single-node\n--- distributed\n%s--- single-node\n%s",
							workers, key, gotLogs[key], want)
					}
				}
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("workers=%d: merged trace differs from single-node\n--- distributed\n%s--- single-node\n%s",
						workers, gotTrace, wantTrace)
				}
			}
		})
	}
}

func postLease(t *testing.T, url, worker string) dist.LeaseResponse {
	t.Helper()
	b, _ := json.Marshal(dist.LeaseRequest{WorkerID: worker})
	resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lease dist.LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatal(err)
	}
	return lease
}

// TestWorkerDeathRequeue kills a worker the hard way — it leases a
// shard and never heartbeats — and asserts the lease expires, the shard
// is requeued exactly once, a surviving worker completes it, the
// journal stays exactly-once, and the zombie's late completion is
// discarded as a duplicate.
func TestWorkerDeathRequeue(t *testing.T) {
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 6,
		Seed:       3,
	}
	key := cfg.Keys()[0]
	logs, err := core.NewLogsRepo(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := dist.New(cfg, dist.CoordinatorOptions{
		ShardSize:    3,
		LeaseTTL:     150 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		JournalFor: func(k string) (*fault.Journal, error) {
			return fault.OpenJournal(logs.JournalPath(k))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The zombie takes the first shard and goes silent.
	lease := postLease(t, srv.URL, "zombie")
	if lease.Status != dist.StatusShard {
		t.Fatalf("zombie lease: %+v", lease)
	}
	zombieShard := lease.Shard.ID

	errs := make(chan error, 1)
	go func() {
		errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
			ID: "survivor", Resolve: cli.Resolve,
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if got := len(results[0].Records); got != 6 {
		t.Fatalf("merged %d records, want 6", got)
	}
	st := coord.Stats()
	if st.Requeues != 1 {
		t.Fatalf("requeues = %d, want exactly 1 (the zombie's shard)", st.Requeues)
	}
	if st.Completed != st.Shards {
		t.Fatalf("%d of %d shards completed", st.Completed, st.Shards)
	}

	// The journal is the exactly-once ledger: every simulated mask once,
	// no mask twice, even though one shard was assigned twice.
	entries, err := fault.ReadJournalFile(logs.JournalPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("journal has %d entries, want 6", len(entries))
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if e.Campaign != key || seen[e.MaskID] {
			t.Fatalf("journal entry duplicated or mislabeled: %+v", e)
		}
		seen[e.MaskID] = true
	}

	// The zombie wakes up and reports its long-finished shard: the
	// completion must be acknowledged but discarded.
	b, _ := json.Marshal(dist.CompleteRequest{
		WorkerID: "zombie", ShardID: zombieShard, Result: &core.ShardResult{},
	})
	resp, err := http.Post(srv.URL+"/v1/complete", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr dist.CompleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if !cr.OK || cr.Accepted {
		t.Fatalf("zombie completion: %+v (want acknowledged, not accepted)", cr)
	}
	if st := coord.Stats(); st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
	if entries, err = fault.ReadJournalFile(logs.JournalPath(key)); err != nil || len(entries) != 6 {
		t.Fatalf("journal changed after duplicate completion: %d entries (%v)", len(entries), err)
	}
}

// TestWorkerFailureFailsCampaign: a deterministic shard error is fatal
// for the whole campaign — retrying identical masks elsewhere would
// fail identically.
func TestWorkerFailureFailsCampaign(t *testing.T) {
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 4,
	}
	coord, err := dist.New(cfg, dist.CoordinatorOptions{ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	badResolve := func(tool, benchmark string) (core.Factory, error) {
		return nil, fmt.Errorf("no simulator on this host")
	}
	werr := dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{ID: "bad", Resolve: badResolve})
	if werr == nil {
		t.Fatal("worker with a broken resolver succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := coord.Wait(ctx); err == nil {
		t.Fatal("campaign succeeded despite a deterministic shard failure")
	}
	// Later workers are told to stop, not handed the poisoned shard.
	if lease := postLease(t, srv.URL, "late"); lease.Status != dist.StatusFailed {
		t.Fatalf("post-failure lease: %+v, want %q", lease, dist.StatusFailed)
	}
}
