// Package dist is the distributed campaign layer: a faultcampd
// coordinator slices a campaign config's mask populations into shard
// ranges and serves them over HTTP/JSON to faultworker processes, which
// execute each shard with the same scheduler machinery a single-node
// run uses (core.RunShard) and stream results back. The coordinator
// owns lease-based shard assignment with heartbeats, requeues the
// shards of dead workers, journals completed runs as the exactly-once
// completion ledger, and merges per-shard results into logs and traces
// byte-identical to a single-node run of the same config.
//
// The protocol is deliberately small and stateless on the worker side:
// everything a worker needs to rebuild a campaign cell — masks,
// checkpoint placement, prune plan — derives deterministically from the
// config, so the wire carries only the config once plus {campaign,
// mask_lo, mask_hi} per shard.
package dist

import (
	"repro/internal/core"
	"repro/internal/telemetry"
)

// ProtocolVersion is the coordinator/worker wire format version. A
// worker refuses a coordinator speaking a newer version (and vice
// versa the coordinator's config carries its own schema version), so a
// mixed-build fleet fails loudly instead of merging subtly different
// outputs.
const ProtocolVersion = 1

// Shard is one unit of distributed work: the mask window [MaskLo,
// MaskHi) of one campaign cell of the config. TraceID/SpanID, when set,
// carry the coordinator's span context: the worker parents the shard's
// matrix span under SpanID so the coordinator assembles one end-to-end
// span tree. Both are additive — a version-1 peer ignores them.
type Shard struct {
	ID       int    `json:"id"`
	Campaign int    `json:"campaign"`
	MaskLo   int    `json:"mask_lo"`
	MaskHi   int    `json:"mask_hi"`
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
}

// ConfigResponse is the body of GET /v1/config: the full campaign
// config plus the lease terms the coordinator enforces.
type ConfigResponse struct {
	ProtocolVersion int                 `json:"protocol_version"`
	Config          core.CampaignConfig `json:"config"`
	LeaseTTLMS      int64               `json:"lease_ttl_ms"`
}

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease statuses.
const (
	// StatusShard carries a shard assignment.
	StatusShard = "shard"
	// StatusWait means every runnable shard is leased or backing off;
	// poll again after WaitMS.
	StatusWait = "wait"
	// StatusDone means every shard completed; the worker may exit.
	StatusDone = "done"
	// StatusFailed means the campaign failed terminally (a worker
	// reported a deterministic error, or a shard ran out of retries).
	StatusFailed = "failed"
)

// LeaseResponse is the body of a lease reply.
type LeaseResponse struct {
	Status string `json:"status"`
	Shard  *Shard `json:"shard,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Error  string `json:"error,omitempty"`
}

// HeartbeatRequest extends a shard lease.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	ShardID  int    `json:"shard_id"`
}

// HeartbeatResponse acknowledges a heartbeat. OK false means the lease
// was lost (expired and requeued, or the shard completed elsewhere);
// the worker's result, if it still sends one, will be deduplicated.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest delivers a shard's outcome. A non-empty Error marks
// the shard — and with it the campaign — failed: shard execution is
// deterministic, so retrying the same masks on another worker would
// fail identically.
type CompleteRequest struct {
	WorkerID string            `json:"worker_id"`
	ShardID  int               `json:"shard_id"`
	Result   *core.ShardResult `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
	// Spans are the shard's worker-side spans (matrix, cell, run,
	// phase), forwarded into the coordinator's merged span file.
	// Snapshot piggybacks the worker's current telemetry snapshot for
	// the fleet aggregation. Both additive.
	Spans    []telemetry.Span    `json:"spans,omitempty"`
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// CompleteResponse acknowledges a completion. Accepted false means the
// shard had already been completed (a requeued shard finished twice);
// the duplicate was discarded, which is fine — the merge ledger is
// exactly-once per mask. Done and Failed report the campaign's terminal
// state in the acknowledgement itself, so the worker that delivers the
// final shard learns the outcome without racing the coordinator's
// shutdown on one more lease poll.
type CompleteResponse struct {
	OK       bool   `json:"ok"`
	Accepted bool   `json:"accepted"`
	Done     bool   `json:"done,omitempty"`
	Failed   string `json:"failed,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SnapshotRequest is the body of POST /v1/snapshot: a worker pushing
// its telemetry snapshot to the fleet aggregation outside the shard
// cycle — a draining worker posts its last word with Final set, so the
// fleet view stays complete after the worker exits.
type SnapshotRequest struct {
	WorkerID string             `json:"worker_id"`
	Snapshot telemetry.Snapshot `json:"snapshot"`
	Final    bool               `json:"final,omitempty"`
}

// SnapshotResponse acknowledges a snapshot push.
type SnapshotResponse struct {
	OK bool `json:"ok"`
}
