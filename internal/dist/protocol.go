// Package dist is the distributed campaign layer: a faultcampd
// coordinator slices a campaign config's mask populations into shard
// ranges and serves them over HTTP/JSON to faultworker processes, which
// execute each shard with the same scheduler machinery a single-node
// run uses (core.RunShard) and stream results back. The coordinator
// owns lease-based shard assignment with heartbeats, requeues the
// shards of dead workers, journals completed runs as the exactly-once
// completion ledger, and merges per-shard results into logs and traces
// byte-identical to a single-node run of the same config.
//
// The protocol is deliberately small and stateless on the worker side:
// everything a worker needs to rebuild a campaign cell — masks,
// checkpoint placement, prune plan — derives deterministically from the
// config, so the wire carries only the config once plus {campaign,
// mask_lo, mask_hi} per shard.
//
// The wire types themselves live in internal/svc/api — the one place
// the versioned /v1 surface is defined — and are re-exported here as
// aliases so the coordinator, its tests and external callers keep
// compiling unchanged.
package dist

import (
	"repro/internal/svc/api"
)

// ProtocolVersion is the coordinator/worker wire format version; see
// api.ProtocolVersion.
const ProtocolVersion = api.ProtocolVersion

// Lease statuses; see the api package for semantics.
const (
	StatusShard  = api.StatusShard
	StatusWait   = api.StatusWait
	StatusDone   = api.StatusDone
	StatusFailed = api.StatusFailed
)

// Worker-protocol bodies, aliased from the versioned API surface.
type (
	Shard             = api.Shard
	ConfigResponse    = api.ConfigResponse
	LeaseRequest      = api.LeaseRequest
	LeaseResponse     = api.LeaseResponse
	HeartbeatRequest  = api.HeartbeatRequest
	HeartbeatResponse = api.HeartbeatResponse
	CompleteRequest   = api.CompleteRequest
	CompleteResponse  = api.CompleteResponse
	SnapshotRequest   = api.SnapshotRequest
	SnapshotResponse  = api.SnapshotResponse
	WorkerStatus      = api.WorkerStatus
)
