package dist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

// TestFleetSnapshotAggregation runs a clean distributed campaign with
// per-worker collectors and checks the observability plane end to end:
// the coordinator's fleet-aggregated snapshot equals the sum of the
// worker snapshots, /snapshot.json and /metrics serve the aggregate,
// and /fleet.json reports every worker final.
func TestFleetSnapshotAggregation(t *testing.T) {
	cfg := testConfig() // 2 campaigns x 10 injections
	coord, err := dist.New(cfg, dist.CoordinatorOptions{ShardSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	es := telemetry.NewEventStream(telemetry.New())
	defer es.Close()
	srv := httptest.NewServer(coord.ObsHandler(es))
	defer srv.Close()

	const workers = 2
	collectors := make([]*telemetry.Collector, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		collectors[w] = telemetry.New()
		go func(w int) {
			errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
				ID:        fmt.Sprintf("w%d", w),
				Resolve:   cli.Resolve,
				Golden:    core.NewGoldenCache(),
				Telemetry: collectors[w],
			})
		}(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if !coord.WaitFleetFinal(10 * time.Second) {
		t.Fatal("fleet never settled: a worker's final snapshot is missing")
	}

	total := uint64(len(cfg.Campaigns) * cfg.Injections)
	fleet := coord.FleetSnapshot()
	if fleet.RunsDone != total {
		t.Fatalf("fleet RunsDone = %d, want %d", fleet.RunsDone, total)
	}
	var sumDone, sumCycles uint64
	for _, c := range collectors {
		s := c.Snapshot()
		sumDone += s.RunsDone
		sumCycles += s.SimCycles
	}
	if fleet.RunsDone != sumDone || fleet.SimCycles != sumCycles {
		t.Fatalf("fleet totals %d runs/%d cycles != worker sums %d/%d",
			fleet.RunsDone, fleet.SimCycles, sumDone, sumCycles)
	}
	if len(fleet.Campaigns) != len(cfg.Campaigns) {
		t.Fatalf("fleet has %d campaign rows, want %d", len(fleet.Campaigns), len(cfg.Campaigns))
	}

	// The HTTP plane serves the same aggregate.
	resp, err := http.Get(srv.URL + "/snapshot.json")
	if err != nil {
		t.Fatal(err)
	}
	var served telemetry.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&served)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/snapshot.json does not parse: %v", err)
	}
	if served.RunsDone != total {
		t.Fatalf("/snapshot.json RunsDone = %d, want %d", served.RunsDone, total)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		metrics.WriteString(sc.Text())
		metrics.WriteString("\n")
	}
	resp.Body.Close()
	want := fmt.Sprintf("faultinject_runs_done_total %d", total)
	if !strings.Contains(metrics.String(), want) {
		t.Fatalf("/metrics lacks %q", want)
	}
	if !strings.Contains(metrics.String(), "# HELP faultinject_runs_done_total") {
		t.Fatal("/metrics lacks HELP lines")
	}

	resp, err = http.Get(srv.URL + "/fleet.json")
	if err != nil {
		t.Fatal(err)
	}
	var statuses []dist.WorkerStatus
	err = json.NewDecoder(resp.Body).Decode(&statuses)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/fleet.json does not parse: %v", err)
	}
	if len(statuses) != workers {
		t.Fatalf("/fleet.json lists %d workers, want %d", len(statuses), workers)
	}
	for _, ws := range statuses {
		if !ws.Final {
			t.Fatalf("worker %s not final after WaitFleetFinal: %+v", ws.ID, ws)
		}
	}

	// The /v1 protocol routes still answer through the observability mux.
	if lease := postLease(t, srv.URL, "late"); lease.Status != dist.StatusDone {
		t.Fatalf("post-campaign lease through ObsHandler: %+v, want %q", lease, dist.StatusDone)
	}
}

// TestWorkerDrain closes the worker's drain channel mid-campaign (from
// a hook that fires on its first shard completion) and checks graceful
// shutdown: the in-flight shard is delivered, the final snapshot is
// posted, the worker exits nil, and the remaining shards stay leasable
// for a successor.
func TestWorkerDrain(t *testing.T) {
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 12,
		Seed:       11,
	}
	coord, err := dist.New(cfg, dist.CoordinatorOptions{ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Drain fires as the first completion arrives: the shard in flight
	// is already being delivered, so the worker must hand it over, post
	// its final snapshot, and exit.
	drain := make(chan struct{})
	var completions atomic.Int64
	inner := coord.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/complete" && completions.Add(1) == 1 {
			close(drain)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	tel := telemetry.New()
	err = dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
		ID:        "draining",
		Resolve:   cli.Resolve,
		Golden:    core.NewGoldenCache(),
		Telemetry: tel,
		Drain:     drain,
	})
	if err != nil {
		t.Fatalf("draining worker: %v", err)
	}
	st := coord.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed shards = %d, want exactly 1 (drain after the first)", st.Completed)
	}
	if got := tel.Snapshot().RunsDone; got != 2 {
		t.Fatalf("drained worker's snapshot has %d runs, want 2 (its one shard)", got)
	}
	fleet := coord.Fleet()
	if len(fleet) != 1 || !fleet[0].Final {
		t.Fatalf("fleet after drain: %+v, want the worker marked final", fleet)
	}
	if fs := coord.FleetSnapshot(); fs.RunsDone != 2 {
		t.Fatalf("fleet snapshot RunsDone = %d, want 2", fs.RunsDone)
	}

	// The campaign is not stranded: a successor finishes the rest.
	errs := make(chan error, 1)
	go func() {
		errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
			ID: "successor", Resolve: cli.Resolve, Golden: core.NewGoldenCache(),
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("successor: %v", err)
	}
	if got := len(results[0].Records); got != 12 {
		t.Fatalf("merged %d records, want 12", got)
	}
}

// TestDistributedSpanTree runs a traced distributed campaign and checks
// the coordinator-side span tree is complete and well-parented: one
// campaign root, every shard span a child of it with a sibling "merge"
// phase, and the workers' forwarded run spans parented under their
// shard spans with the coordinator's trace ID throughout.
func TestDistributedSpanTree(t *testing.T) {
	cfg := core.CampaignConfig{
		Campaigns:  []core.CampaignCell{{Tool: "gefin-x86", Benchmark: "qsort", Structure: "rf.int"}},
		Injections: 6,
		Seed:       5,
	}
	tracer := telemetry.NewTracer("trace-test", "c")
	buf := telemetry.NewSpanBuffer()
	tracer.AddSink(buf)
	coord, err := dist.New(cfg, dist.CoordinatorOptions{ShardSize: 3, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	errs := make(chan error, 1)
	go func() {
		errs <- dist.RunWorker(context.Background(), srv.URL, dist.WorkerOptions{
			ID: "w0", Resolve: cli.Resolve, Golden: core.NewGoldenCache(),
		})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("worker: %v", err)
	}

	spans := buf.Spans()
	byID := map[string]telemetry.Span{}
	var campaignID string
	shardSpans := map[string]bool{}
	runs, merges := 0, 0
	for _, sp := range spans {
		if sp.TraceID != "trace-test" {
			t.Fatalf("span %s has trace id %q, want trace-test", sp.SpanID, sp.TraceID)
		}
		byID[sp.SpanID] = sp
		switch sp.Kind {
		case telemetry.SpanCampaign:
			if sp.Name == "campaign" {
				if campaignID != "" {
					t.Fatal("two campaign root spans")
				}
				campaignID = sp.SpanID
			}
		case telemetry.SpanShard:
			shardSpans[sp.SpanID] = true
		case telemetry.SpanRun:
			runs++
		case telemetry.SpanPhase:
			if sp.Name == "merge" {
				merges++
			}
		}
	}
	if campaignID == "" {
		t.Fatal("no campaign root span")
	}
	if len(shardSpans) != 2 || merges != 2 {
		t.Fatalf("got %d shard spans and %d merge phases, want 2 and 2", len(shardSpans), merges)
	}
	if runs != cfg.Injections {
		t.Fatalf("got %d run spans, want %d", runs, cfg.Injections)
	}
	for _, sp := range spans {
		switch sp.Kind {
		case telemetry.SpanShard:
			if sp.ParentID != campaignID {
				t.Fatalf("shard span %s parented under %q, want the campaign root", sp.SpanID, sp.ParentID)
			}
			if sp.Worker != "w0" {
				t.Fatalf("shard span %s lacks the executing worker: %+v", sp.SpanID, sp)
			}
		case telemetry.SpanPhase:
			if sp.Name == "merge" && !shardSpans[sp.ParentID] {
				t.Fatalf("merge phase parented under %q, want a shard span", sp.ParentID)
			}
		}
	}
	// The worker's matrix span hangs under a pre-minted shard span; its
	// run spans hang under cell spans below it. Walk each run span up
	// and require the path to reach the campaign root.
	rootOf := func(sp telemetry.Span) string {
		for depth := 0; depth < 10; depth++ {
			if sp.ParentID == "" {
				return sp.SpanID
			}
			parent, ok := byID[sp.ParentID]
			if !ok {
				// Pre-minted shard IDs resolve once the shard span is
				// emitted; any other dangling parent is a broken tree.
				if shardSpans[sp.ParentID] {
					return campaignID
				}
				t.Fatalf("span %s has unknown parent %q", sp.SpanID, sp.ParentID)
			}
			sp = parent
		}
		t.Fatalf("span tree deeper than 10 at %s", sp.SpanID)
		return ""
	}
	for _, sp := range spans {
		if sp.Kind == telemetry.SpanRun {
			if got := rootOf(sp); got != campaignID {
				t.Fatalf("run span %s roots at %q, want the campaign root", sp.SpanID, got)
			}
		}
	}
}
