package dist

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/svc/api"
	"repro/internal/svc/client"
	"repro/internal/telemetry"
)

// WorkerOptions parameterize one faultworker process.
type WorkerOptions struct {
	// ID names the worker in leases and logs; required.
	ID string
	// Resolve materializes simulator factories for the config's cells;
	// required (cli.Resolve in production, fakes in tests).
	Resolve core.Resolver
	// Golden shares golden runs, ladders and liveness profiles across
	// the worker's shards; nil uses a private cache (still shared across
	// shards — the point of running a worker process). Applies to the
	// single-campaign mode only: a fleet worker keeps one private cache
	// per service campaign, since equal cell keys in different campaigns
	// may carry different configs.
	Golden *core.GoldenCache
	// Heartbeat overrides the lease-extension period; 0 derives TTL/3
	// from the coordinator's lease terms.
	Heartbeat time.Duration
	// Poll caps the wait between lease polls when the coordinator has
	// no runnable shard; 0 honors the coordinator's wait hint as-is.
	Poll time.Duration
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
	// Client is the service client; nil builds one for the coordinator
	// URL with default retry terms.
	Client *client.Client
	// Telemetry, when non-nil, aggregates the worker's own view of the
	// campaign: every accepted shard result folds into it, a snapshot
	// piggybacks on each completion, and a final snapshot is pushed to
	// the coordinator's /v1/snapshot when the worker exits or drains.
	Telemetry *telemetry.Collector
	// Drain, when non-nil, requests graceful shutdown when closed: the
	// worker finishes its in-flight shard (results are never thrown
	// away), delivers it, posts its final snapshot, and returns nil
	// instead of leasing more work.
	Drain <-chan struct{}
}

// workerCampaign is a fleet worker's cached view of one service
// campaign: its validated config, telemetry rows, and a private golden
// cache (two campaigns may share a cell key with different configs, so
// golden runs never cross campaign boundaries).
type workerCampaign struct {
	id     string
	cfg    core.CampaignConfig
	keys   []string
	camps  map[int]*telemetry.CampaignStats
	golden *core.GoldenCache
	ttl    time.Duration
}

// RunWorker executes shards from the coordinator (or campaign service)
// at coordURL until the campaign completes (nil), fails (the campaign
// error), or ctx ends.
//
// Against a single-campaign coordinator the worker fetches the one
// config up front and exits with the campaign's terminal state. Against
// the multi-campaign service (detected by /v1/config answering 404) the
// worker is fleet-level: leases carry campaign IDs, per-campaign
// configs are fetched and cached on first contact, one campaign's
// failure or completion never stops the worker, and transient service
// outages (a daemon restart) are ridden out by polling.
//
// The worker is stateless between shards: each shard rebuilds its
// campaign cell deterministically from the config via core.RunShard,
// with the golden cache carrying the only cross-shard state (memoized
// fault-free runs and plan-time artifacts).
func RunWorker(ctx context.Context, coordURL string, opt WorkerOptions) error {
	if opt.ID == "" {
		return fmt.Errorf("dist: worker needs an ID")
	}
	if opt.Resolve == nil {
		return fmt.Errorf("dist: worker needs a Resolver")
	}
	cl := opt.Client
	if cl == nil {
		cl = client.New(coordURL)
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	camps := make(map[string]*workerCampaign)
	fleet := false
	started := false

	// loadCampaign fetches, validates and caches the config behind a
	// lease: the service's per-campaign config when the lease names one,
	// the single /v1/config otherwise.
	loadCampaign := func(id string) (*workerCampaign, error) {
		if wc, ok := camps[id]; ok {
			return wc, nil
		}
		var (
			resp api.ConfigResponse
			err  error
		)
		if id == "" {
			resp, err = cl.Config(ctx)
		} else {
			resp, err = cl.CampaignConfig(ctx, id)
		}
		if err != nil {
			return nil, err
		}
		if resp.ProtocolVersion > ProtocolVersion {
			return nil, fmt.Errorf("dist: coordinator speaks protocol %d; this worker speaks <= %d", resp.ProtocolVersion, ProtocolVersion)
		}
		if err := resp.Config.Validate(); err != nil {
			return nil, fmt.Errorf("dist: coordinator config: %w", err)
		}
		wc := &workerCampaign{
			id: id, cfg: resp.Config, keys: resp.Config.Keys(),
			camps: make(map[int]*telemetry.CampaignStats),
			ttl:   time.Duration(resp.LeaseTTLMS) * time.Millisecond,
		}
		if id == "" {
			wc.golden = opt.Golden
		}
		if wc.golden == nil {
			wc.golden = core.NewGoldenCache()
		}
		if opt.Telemetry != nil && !started {
			// The worker's own collector mirrors a single-node run of its
			// share of the campaign; Workers is the per-shard simulation
			// pool so the fleet merge sums pool sizes across the fleet.
			opt.Telemetry.Start(wc.cfg.Workers)
			started = true
		}
		return wc, nil
	}

	// Single-campaign probe: a coordinator answers /v1/config; the
	// multi-campaign service has no standalone campaign there and
	// answers not_found, which flips the worker into fleet mode.
	if _, err := loadCampaign(""); err != nil {
		var apiErr *api.Error
		if client.AsError(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
			fleet = true
			logf("worker %s: fleet mode (multi-campaign service at %s)", opt.ID, coordURL)
		} else {
			return fmt.Errorf("dist: fetching coordinator config: %w", err)
		}
	}

	// postFinal pushes the worker's last snapshot so the coordinator's
	// fleet view stays complete after this process exits.
	postFinal := func() {
		if opt.Telemetry == nil {
			return
		}
		_, err := cl.PushSnapshot(ctx, api.SnapshotRequest{WorkerID: opt.ID, Snapshot: opt.Telemetry.Snapshot(), Final: true})
		if err != nil {
			logf("worker %s: posting final snapshot: %v", opt.ID, err)
		}
	}
	draining := func() bool {
		if opt.Drain == nil {
			return false
		}
		select {
		case <-opt.Drain:
			return true
		default:
			return false
		}
	}
	sleep := func(wait time.Duration) error {
		if opt.Poll > 0 && wait > opt.Poll {
			wait = opt.Poll
		}
		if wait <= 0 {
			wait = 100 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-opt.Drain: // nil when no drain channel; never fires then
			// Loop back: the top-of-loop drain check posts the final
			// snapshot and exits.
			return nil
		case <-time.After(wait):
			return nil
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if draining() {
			logf("worker %s: draining; posting final snapshot and exiting", opt.ID)
			postFinal()
			return nil
		}
		lease, err := cl.Lease(ctx, opt.ID)
		if err != nil {
			if fleet && client.Retryable(err) {
				// The service is briefly unreachable (restarting); a fleet
				// worker outlives it rather than dying with it.
				logf("worker %s: lease failed (%v); retrying", opt.ID, err)
				if err := sleep(time.Second); err != nil {
					return err
				}
				continue
			}
			return err
		}
		switch lease.Status {
		case StatusDone:
			logf("worker %s: campaign complete", opt.ID)
			postFinal()
			return nil
		case StatusFailed:
			return fmt.Errorf("dist: campaign failed: %s", lease.Error)
		case StatusWait:
			if err := sleep(time.Duration(lease.WaitMS) * time.Millisecond); err != nil {
				return err
			}
		case StatusShard:
			sh := *lease.Shard
			wc, err := loadCampaign(lease.CampaignID)
			if err != nil {
				if fleet {
					// This campaign may have finished between the lease and
					// the config fetch; drop the lease and keep serving the
					// rest of the fleet.
					logf("worker %s: campaign %s config: %v", opt.ID, lease.CampaignID, err)
					if err := sleep(time.Second); err != nil {
						return err
					}
					continue
				}
				return err
			}
			logf("worker %s: shard %d (campaign %d masks [%d,%d))", opt.ID, sh.ID, sh.Campaign, sh.MaskLo, sh.MaskHi)
			result, spans, runErr := runLeased(ctx, opt, cl, wc, sh)
			req := api.CompleteRequest{WorkerID: opt.ID, ShardID: sh.ID, CampaignID: wc.id, Result: result, Spans: spans}
			if runErr != nil {
				// Deterministic failure: report it so the coordinator fails
				// the campaign instead of retrying the same masks elsewhere.
				req.Result = nil
				req.Spans = nil
				req.Error = runErr.Error()
			} else if tel := opt.Telemetry; tel != nil {
				// Fold the shard into the worker's own aggregate before
				// completing, so the piggybacked snapshot already counts it.
				// A late duplicate of a requeued shard folds here too — this
				// worker really did the work, even if the merge discards the
				// copy; the coordinator's merged collector stays exactly-once
				// regardless.
				foldShardResult(tel, wc, sh.Campaign, result)
				snap := tel.Snapshot()
				req.Snapshot = &snap
			}
			resp, err := cl.Complete(ctx, req)
			if err != nil {
				if fleet && client.Retryable(err) {
					// The merge is exactly-once: if the completion did land
					// before the connection broke, the requeued shard's second
					// delivery dedups.
					logf("worker %s: completing shard %d: %v", opt.ID, sh.ID, err)
					if err := sleep(time.Second); err != nil {
						return err
					}
					continue
				}
				return err
			}
			if resp.Error != "" {
				if fleet {
					logf("worker %s: completing shard %d of %s: %s", opt.ID, sh.ID, wc.id, resp.Error)
					continue
				}
				return fmt.Errorf("dist: completing shard %d: %s", sh.ID, resp.Error)
			}
			if !resp.Accepted && runErr == nil {
				logf("worker %s: shard %d was already completed elsewhere", opt.ID, sh.ID)
			}
			if runErr != nil {
				if fleet {
					// One campaign's deterministic failure is its own
					// terminal state, not the fleet's.
					logf("worker %s: shard %d of %s failed: %v", opt.ID, sh.ID, wc.id, runErr)
					continue
				}
				return fmt.Errorf("dist: shard %d: %w", sh.ID, runErr)
			}
			// The ack carries the campaign's terminal state so the worker
			// that lands the final shard exits without one more lease poll
			// (which would race the coordinator's shutdown).
			if resp.Failed != "" {
				if fleet {
					logf("worker %s: campaign %s failed: %s", opt.ID, wc.id, resp.Failed)
					continue
				}
				return fmt.Errorf("dist: campaign failed: %s", resp.Failed)
			}
			if resp.Done {
				if fleet {
					logf("worker %s: campaign %s complete", opt.ID, wc.id)
					continue
				}
				logf("worker %s: campaign complete", opt.ID)
				postFinal()
				return nil
			}
		default:
			return fmt.Errorf("dist: coordinator returned unknown lease status %q", lease.Status)
		}
	}
}

// foldShardResult replays one shard's runs into the worker's own
// collector — the same events the coordinator synthesizes on merge.
// Replicated stubs are skipped: their verdicts are resolved
// coordinator-side at finalize, and counting a stub here would inflate
// the fleet totals relative to the merged view.
func foldShardResult(tel *telemetry.Collector, wc *workerCampaign, campaign int, res *core.ShardResult) {
	if res == nil {
		return
	}
	cs, ok := wc.camps[campaign]
	if !ok {
		cell := wc.cfg.Campaigns[campaign]
		cs = tel.Campaign(wc.keys[campaign], cell.Tool, cell.Benchmark, cell.Structure)
		wc.camps[campaign] = cs
	}
	n := 0
	for _, run := range res.Runs {
		if run.Pruned == "replicated" {
			continue
		}
		n++
	}
	tel.AddQueued(n)
	for _, run := range res.Runs {
		if run.Pruned == "replicated" {
			continue
		}
		emitShardRun(tel, cs, wc.keys[campaign], run, run.Pruned, -1)
	}
}

// runLeased executes one shard while a background goroutine keeps the
// lease alive. A lost lease (coordinator requeued the shard) does not
// abort the run — core.RunShard is not interruptible mid-mask and the
// completed result is still byte-identical, so it is sent anyway and
// deduplicated by the coordinator.
//
// When the shard carries span context, the shard runs under a private
// per-shard tracer (span IDs prefixed "<worker>-s<shard>", so requeued
// shards executed by several workers never collide) whose buffered
// spans ship back with the completion.
func runLeased(ctx context.Context, opt WorkerOptions, cl *client.Client, wc *workerCampaign, sh Shard) (*core.ShardResult, []telemetry.Span, error) {
	heartbeat := opt.Heartbeat
	if heartbeat <= 0 {
		heartbeat = wc.ttl / 3
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				resp, err := cl.Heartbeat(hbCtx, api.HeartbeatRequest{WorkerID: opt.ID, ShardID: sh.ID, CampaignID: wc.id})
				if err == nil && !resp.OK && opt.Logf != nil {
					opt.Logf("worker %s: lease on shard %d lost", opt.ID, sh.ID)
				}
			}
		}
	}()
	att := core.Attach{Golden: wc.golden}
	var buf *telemetry.SpanBuffer
	if sh.TraceID != "" {
		tracer := telemetry.NewTracer(sh.TraceID, opt.ID+"-s"+strconv.Itoa(sh.ID))
		buf = telemetry.NewSpanBuffer()
		tracer.AddSink(buf)
		att.Tracer = tracer
		att.TraceParent = sh.SpanID
		att.SpanWorker = opt.ID
	}
	res, err := core.RunShard(wc.cfg, sh.Campaign, sh.MaskLo, sh.MaskHi, opt.Resolve, att)
	if err != nil || buf == nil {
		return res, nil, err
	}
	return res, buf.Spans(), nil
}
