package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// WorkerOptions parameterize one faultworker process.
type WorkerOptions struct {
	// ID names the worker in leases and logs; required.
	ID string
	// Resolve materializes simulator factories for the config's cells;
	// required (cli.Resolve in production, fakes in tests).
	Resolve core.Resolver
	// Golden shares golden runs, ladders and liveness profiles across
	// the worker's shards; nil uses a private cache (still shared across
	// shards — the point of running a worker process).
	Golden *core.GoldenCache
	// Heartbeat overrides the lease-extension period; 0 derives TTL/3
	// from the coordinator's lease terms.
	Heartbeat time.Duration
	// Poll caps the wait between lease polls when the coordinator has
	// no runnable shard; 0 honors the coordinator's wait hint as-is.
	Poll time.Duration
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
	// Client is the HTTP client; nil uses a default with a sane timeout.
	Client *http.Client
	// Telemetry, when non-nil, aggregates the worker's own view of the
	// campaign: every accepted shard result folds into it, a snapshot
	// piggybacks on each completion, and a final snapshot is pushed to
	// the coordinator's /v1/snapshot when the worker exits or drains.
	Telemetry *telemetry.Collector
	// Drain, when non-nil, requests graceful shutdown when closed: the
	// worker finishes its in-flight shard (results are never thrown
	// away), delivers it, posts its final snapshot, and returns nil
	// instead of leasing more work.
	Drain <-chan struct{}
}

// RunWorker executes shards from the coordinator at coordURL until the
// campaign completes (nil), fails (the campaign error), or ctx ends.
//
// The worker is stateless between shards: each shard rebuilds its
// campaign cell deterministically from the config via core.RunShard,
// with the golden cache carrying the only cross-shard state (memoized
// fault-free runs and plan-time artifacts).
func RunWorker(ctx context.Context, coordURL string, opt WorkerOptions) error {
	if opt.ID == "" {
		return fmt.Errorf("dist: worker needs an ID")
	}
	if opt.Resolve == nil {
		return fmt.Errorf("dist: worker needs a Resolver")
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opt.Golden == nil {
		opt.Golden = core.NewGoldenCache()
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cfgResp, err := fetchConfig(ctx, opt.Client, coordURL)
	if err != nil {
		return err
	}
	if cfgResp.ProtocolVersion > ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol %d; this worker speaks <= %d", cfgResp.ProtocolVersion, ProtocolVersion)
	}
	cfg := cfgResp.Config
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("dist: coordinator config: %w", err)
	}
	heartbeat := opt.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Duration(cfgResp.LeaseTTLMS) * time.Millisecond / 3
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}

	if opt.Telemetry != nil {
		// The worker's own collector mirrors a single-node run of its
		// share of the campaign; Workers is the per-shard simulation pool
		// so the fleet merge sums pool sizes across the fleet.
		opt.Telemetry.Start(cfg.Workers)
	}
	keys := cfg.Keys()
	camps := make(map[int]*telemetry.CampaignStats)
	// postFinal pushes the worker's last snapshot so the coordinator's
	// fleet view stays complete after this process exits.
	postFinal := func() {
		if opt.Telemetry == nil {
			return
		}
		var resp SnapshotResponse
		err := postJSON(ctx, opt.Client, coordURL+"/v1/snapshot",
			SnapshotRequest{WorkerID: opt.ID, Snapshot: opt.Telemetry.Snapshot(), Final: true}, &resp)
		if err != nil {
			logf("worker %s: posting final snapshot: %v", opt.ID, err)
		}
	}
	draining := func() bool {
		if opt.Drain == nil {
			return false
		}
		select {
		case <-opt.Drain:
			return true
		default:
			return false
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if draining() {
			logf("worker %s: draining; posting final snapshot and exiting", opt.ID)
			postFinal()
			return nil
		}
		var lease LeaseResponse
		if err := postJSON(ctx, opt.Client, coordURL+"/v1/lease", LeaseRequest{WorkerID: opt.ID}, &lease); err != nil {
			return err
		}
		switch lease.Status {
		case StatusDone:
			logf("worker %s: campaign complete", opt.ID)
			postFinal()
			return nil
		case StatusFailed:
			return fmt.Errorf("dist: campaign failed: %s", lease.Error)
		case StatusWait:
			wait := time.Duration(lease.WaitMS) * time.Millisecond
			if opt.Poll > 0 && wait > opt.Poll {
				wait = opt.Poll
			}
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-opt.Drain: // nil when no drain channel; never fires then
				// Loop back: the top-of-loop drain check posts the final
				// snapshot and exits.
			case <-time.After(wait):
			}
		case StatusShard:
			sh := *lease.Shard
			logf("worker %s: shard %d (campaign %d masks [%d,%d))", opt.ID, sh.ID, sh.Campaign, sh.MaskLo, sh.MaskHi)
			result, spans, runErr := runLeased(ctx, opt, coordURL, cfg, sh, heartbeat)
			req := CompleteRequest{WorkerID: opt.ID, ShardID: sh.ID, Result: result, Spans: spans}
			if runErr != nil {
				// Deterministic failure: report it so the coordinator fails
				// the campaign instead of retrying the same masks elsewhere.
				req.Result = nil
				req.Spans = nil
				req.Error = runErr.Error()
			} else if tel := opt.Telemetry; tel != nil {
				// Fold the shard into the worker's own aggregate before
				// completing, so the piggybacked snapshot already counts it.
				// A late duplicate of a requeued shard folds here too — this
				// worker really did the work, even if the merge discards the
				// copy; the coordinator's merged collector stays exactly-once
				// regardless.
				foldShardResult(tel, camps, cfg, keys, sh.Campaign, result)
				snap := tel.Snapshot()
				req.Snapshot = &snap
			}
			var resp CompleteResponse
			if err := postJSON(ctx, opt.Client, coordURL+"/v1/complete", req, &resp); err != nil {
				return err
			}
			if resp.Error != "" {
				return fmt.Errorf("dist: completing shard %d: %s", sh.ID, resp.Error)
			}
			if !resp.Accepted && runErr == nil {
				logf("worker %s: shard %d was already completed elsewhere", opt.ID, sh.ID)
			}
			if runErr != nil {
				return fmt.Errorf("dist: shard %d: %w", sh.ID, runErr)
			}
			// The ack carries the campaign's terminal state so the worker
			// that lands the final shard exits without one more lease poll
			// (which would race the coordinator's shutdown).
			if resp.Failed != "" {
				return fmt.Errorf("dist: campaign failed: %s", resp.Failed)
			}
			if resp.Done {
				logf("worker %s: campaign complete", opt.ID)
				postFinal()
				return nil
			}
		default:
			return fmt.Errorf("dist: coordinator returned unknown lease status %q", lease.Status)
		}
	}
}

// foldShardResult replays one shard's runs into the worker's own
// collector — the same events the coordinator synthesizes on merge.
// Replicated stubs are skipped: their verdicts are resolved
// coordinator-side at finalize, and counting a stub here would inflate
// the fleet totals relative to the merged view.
func foldShardResult(tel *telemetry.Collector, camps map[int]*telemetry.CampaignStats, cfg core.CampaignConfig, keys []string, campaign int, res *core.ShardResult) {
	if res == nil {
		return
	}
	cs, ok := camps[campaign]
	if !ok {
		cell := cfg.Campaigns[campaign]
		cs = tel.Campaign(keys[campaign], cell.Tool, cell.Benchmark, cell.Structure)
		camps[campaign] = cs
	}
	n := 0
	for _, run := range res.Runs {
		if run.Pruned == "replicated" {
			continue
		}
		n++
	}
	tel.AddQueued(n)
	for _, run := range res.Runs {
		if run.Pruned == "replicated" {
			continue
		}
		emitShardRun(tel, cs, keys[campaign], run, run.Pruned, -1)
	}
}

// runLeased executes one shard while a background goroutine keeps the
// lease alive. A lost lease (coordinator requeued the shard) does not
// abort the run — core.RunShard is not interruptible mid-mask and the
// completed result is still byte-identical, so it is sent anyway and
// deduplicated by the coordinator.
//
// When the shard carries span context, the shard runs under a private
// per-shard tracer (span IDs prefixed "<worker>-s<shard>", so requeued
// shards executed by several workers never collide) whose buffered
// spans ship back with the completion.
func runLeased(ctx context.Context, opt WorkerOptions, coordURL string, cfg core.CampaignConfig, sh Shard, heartbeat time.Duration) (*core.ShardResult, []telemetry.Span, error) {
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				var resp HeartbeatResponse
				err := postJSON(hbCtx, opt.Client, coordURL+"/v1/heartbeat",
					HeartbeatRequest{WorkerID: opt.ID, ShardID: sh.ID}, &resp)
				if err == nil && !resp.OK && opt.Logf != nil {
					opt.Logf("worker %s: lease on shard %d lost", opt.ID, sh.ID)
				}
			}
		}
	}()
	att := core.Attach{Golden: opt.Golden}
	var buf *telemetry.SpanBuffer
	if sh.TraceID != "" {
		tracer := telemetry.NewTracer(sh.TraceID, opt.ID+"-s"+strconv.Itoa(sh.ID))
		buf = telemetry.NewSpanBuffer()
		tracer.AddSink(buf)
		att.Tracer = tracer
		att.TraceParent = sh.SpanID
		att.SpanWorker = opt.ID
	}
	res, err := core.RunShard(cfg, sh.Campaign, sh.MaskLo, sh.MaskHi, opt.Resolve, att)
	if err != nil || buf == nil {
		return res, nil, err
	}
	return res, buf.Spans(), nil
}

// fetchConfig GETs the coordinator's config, retrying briefly so a
// worker may start before its coordinator finishes binding.
func fetchConfig(ctx context.Context, client *http.Client, coordURL string) (ConfigResponse, error) {
	var resp ConfigResponse
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordURL+"/v1/config", nil)
		if err != nil {
			return resp, err
		}
		r, err := client.Do(req)
		if err == nil {
			err = decodeResponse(r, &resp)
			if err == nil {
				return resp, nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		}
	}
	return resp, fmt.Errorf("dist: fetching coordinator config: %w", lastErr)
}

func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		r, err := client.Do(req)
		if err == nil {
			if err = decodeResponse(r, out); err == nil {
				return nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
		}
	}
	return fmt.Errorf("dist: %s: %w", url, lastErr)
}

func decodeResponse(r *http.Response, out any) error {
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("HTTP %d: %s", r.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(r.Body).Decode(out)
}
