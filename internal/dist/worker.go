package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
)

// WorkerOptions parameterize one faultworker process.
type WorkerOptions struct {
	// ID names the worker in leases and logs; required.
	ID string
	// Resolve materializes simulator factories for the config's cells;
	// required (cli.Resolve in production, fakes in tests).
	Resolve core.Resolver
	// Golden shares golden runs, ladders and liveness profiles across
	// the worker's shards; nil uses a private cache (still shared across
	// shards — the point of running a worker process).
	Golden *core.GoldenCache
	// Heartbeat overrides the lease-extension period; 0 derives TTL/3
	// from the coordinator's lease terms.
	Heartbeat time.Duration
	// Poll caps the wait between lease polls when the coordinator has
	// no runnable shard; 0 honors the coordinator's wait hint as-is.
	Poll time.Duration
	// Logf, when non-nil, receives worker lifecycle lines.
	Logf func(format string, args ...any)
	// Client is the HTTP client; nil uses a default with a sane timeout.
	Client *http.Client
}

// RunWorker executes shards from the coordinator at coordURL until the
// campaign completes (nil), fails (the campaign error), or ctx ends.
//
// The worker is stateless between shards: each shard rebuilds its
// campaign cell deterministically from the config via core.RunShard,
// with the golden cache carrying the only cross-shard state (memoized
// fault-free runs and plan-time artifacts).
func RunWorker(ctx context.Context, coordURL string, opt WorkerOptions) error {
	if opt.ID == "" {
		return fmt.Errorf("dist: worker needs an ID")
	}
	if opt.Resolve == nil {
		return fmt.Errorf("dist: worker needs a Resolver")
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opt.Golden == nil {
		opt.Golden = core.NewGoldenCache()
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cfgResp, err := fetchConfig(ctx, opt.Client, coordURL)
	if err != nil {
		return err
	}
	if cfgResp.ProtocolVersion > ProtocolVersion {
		return fmt.Errorf("dist: coordinator speaks protocol %d; this worker speaks <= %d", cfgResp.ProtocolVersion, ProtocolVersion)
	}
	cfg := cfgResp.Config
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("dist: coordinator config: %w", err)
	}
	heartbeat := opt.Heartbeat
	if heartbeat <= 0 {
		heartbeat = time.Duration(cfgResp.LeaseTTLMS) * time.Millisecond / 3
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := postJSON(ctx, opt.Client, coordURL+"/v1/lease", LeaseRequest{WorkerID: opt.ID}, &lease); err != nil {
			return err
		}
		switch lease.Status {
		case StatusDone:
			logf("worker %s: campaign complete", opt.ID)
			return nil
		case StatusFailed:
			return fmt.Errorf("dist: campaign failed: %s", lease.Error)
		case StatusWait:
			wait := time.Duration(lease.WaitMS) * time.Millisecond
			if opt.Poll > 0 && wait > opt.Poll {
				wait = opt.Poll
			}
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		case StatusShard:
			sh := *lease.Shard
			logf("worker %s: shard %d (campaign %d masks [%d,%d))", opt.ID, sh.ID, sh.Campaign, sh.MaskLo, sh.MaskHi)
			result, runErr := runLeased(ctx, opt, coordURL, cfg, sh, heartbeat)
			req := CompleteRequest{WorkerID: opt.ID, ShardID: sh.ID, Result: result}
			if runErr != nil {
				// Deterministic failure: report it so the coordinator fails
				// the campaign instead of retrying the same masks elsewhere.
				req.Result = nil
				req.Error = runErr.Error()
			}
			var resp CompleteResponse
			if err := postJSON(ctx, opt.Client, coordURL+"/v1/complete", req, &resp); err != nil {
				return err
			}
			if resp.Error != "" {
				return fmt.Errorf("dist: completing shard %d: %s", sh.ID, resp.Error)
			}
			if !resp.Accepted && runErr == nil {
				logf("worker %s: shard %d was already completed elsewhere", opt.ID, sh.ID)
			}
			if runErr != nil {
				return fmt.Errorf("dist: shard %d: %w", sh.ID, runErr)
			}
			// The ack carries the campaign's terminal state so the worker
			// that lands the final shard exits without one more lease poll
			// (which would race the coordinator's shutdown).
			if resp.Failed != "" {
				return fmt.Errorf("dist: campaign failed: %s", resp.Failed)
			}
			if resp.Done {
				logf("worker %s: campaign complete", opt.ID)
				return nil
			}
		default:
			return fmt.Errorf("dist: coordinator returned unknown lease status %q", lease.Status)
		}
	}
}

// runLeased executes one shard while a background goroutine keeps the
// lease alive. A lost lease (coordinator requeued the shard) does not
// abort the run — core.RunShard is not interruptible mid-mask and the
// completed result is still byte-identical, so it is sent anyway and
// deduplicated by the coordinator.
func runLeased(ctx context.Context, opt WorkerOptions, coordURL string, cfg core.CampaignConfig, sh Shard, heartbeat time.Duration) (*core.ShardResult, error) {
	hbCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				var resp HeartbeatResponse
				err := postJSON(hbCtx, opt.Client, coordURL+"/v1/heartbeat",
					HeartbeatRequest{WorkerID: opt.ID, ShardID: sh.ID}, &resp)
				if err == nil && !resp.OK && opt.Logf != nil {
					opt.Logf("worker %s: lease on shard %d lost", opt.ID, sh.ID)
				}
			}
		}
	}()
	return core.RunShard(cfg, sh.Campaign, sh.MaskLo, sh.MaskHi, opt.Resolve, core.Attach{Golden: opt.Golden})
}

// fetchConfig GETs the coordinator's config, retrying briefly so a
// worker may start before its coordinator finishes binding.
func fetchConfig(ctx context.Context, client *http.Client, coordURL string) (ConfigResponse, error) {
	var resp ConfigResponse
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordURL+"/v1/config", nil)
		if err != nil {
			return resp, err
		}
		r, err := client.Do(req)
		if err == nil {
			err = decodeResponse(r, &resp)
			if err == nil {
				return resp, nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
		}
	}
	return resp, fmt.Errorf("dist: fetching coordinator config: %w", lastErr)
}

func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		r, err := client.Do(req)
		if err == nil {
			if err = decodeResponse(r, out); err == nil {
				return nil
			}
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
		}
	}
	return fmt.Errorf("dist: %s: %w", url, lastErr)
}

func decodeResponse(r *http.Response, out any) error {
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("HTTP %d: %s", r.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(r.Body).Decode(out)
}
