// Package prune is the pre-injection pruning engine: given a campaign's
// fault masks and liveness profiles of the fault-free run, it classifies
// provably-dead faults as Masked without simulating them and collapses
// equivalent faults so only one representative per class is simulated.
//
// The soundness argument rests on the differential core of the paper: a
// faulted run is byte-identical to the fault-free run until the first
// access that reads the flipped bit. A transient fault whose next
// covering access is a write is erased before it can influence anything
// (the paper's §III.B overwritten-before-read proof, moved from runtime
// to plan time); one whose entry is invalidated first can never be read
// as live state; one whose bit is never accessed again rides along to a
// completed run with golden output. All three are Masked with certainty.
// Two transient faults of the same bit whose injection cycles fall
// between the same two consecutive covering accesses (and which would
// start from the same restore point) face identical machine state at the
// first read of the bit, so their runs — and verdicts — are identical;
// simulating one representative decides the whole class.
//
// The engine only ever prunes when the profile proves the outcome; any
// uncertainty (non-transient models, missing profiles, out-of-range
// coordinates) degrades to simulation, never to a wrong verdict.
package prune

import (
	"repro/internal/bitarray"
	"repro/internal/fault"
)

// Action is the planned treatment of one mask.
type Action uint8

const (
	// Simulate runs the mask normally (also the representative of every
	// equivalence class).
	Simulate Action = iota
	// Dead classifies the mask as Masked without simulation.
	Dead
	// Replicate copies the representative's verdict to the mask.
	Replicate
)

// String returns the plan-report name of the action.
func (a Action) String() string {
	switch a {
	case Simulate:
		return "simulate"
	case Dead:
		return "dead"
	case Replicate:
		return "replicate"
	default:
		return "unknown"
	}
}

// Dead-fault reasons, named after the §III.B proofs.
const (
	ReasonOverwritten   = "overwritten"
	ReasonEvicted       = "evicted"
	ReasonNeverAccessed = "never-accessed"
)

// Decision is the plan entry of one mask.
type Decision struct {
	Action Action
	// Reason names the dead proof (Dead only).
	Reason string
	// Rep is the mask index of the simulated representative (Replicate
	// only).
	Rep int
}

// Plan is the pruning plan of one campaign: one decision per mask, in
// mask order, plus the counts the telemetry layer reports.
type Plan struct {
	Decisions  []Decision
	Dead       int
	Replicated int
	Simulated  int
}

// Profiles maps structure name → liveness profile of one fault-free
// trajectory (boot, or restored from one checkpoint rung).
type Profiles map[string]*bitarray.Profile

// classKey identifies an equivalence class: same restore point, same bit,
// and the same next covering access (by per-entry event index, which
// pins the inter-access interval the injection cycles fall into).
type classKey struct {
	rung      int
	structure string
	entry     int
	bit       int
	event     int
}

// BuildPlan classifies every mask against the liveness profile of the
// trajectory its run would follow. profiles[rungOf[i]+1] is the profile
// set of mask i — index 0 is the boot trajectory, index r+1 the replay
// restored from checkpoint rung r — so pruning stays sound when runs
// restore from mid-run checkpoints: the profile is taken from the same
// restore point the pruned run would have started at. A nil rungOf means
// every mask boots from scratch. A nil or missing profile set degrades
// that mask to Simulate.
func BuildPlan(masks []fault.Mask, profiles []Profiles, rungOf []int) *Plan {
	plan := &Plan{Decisions: make([]Decision, len(masks))}
	seen := make(map[classKey]int)
	for i, m := range masks {
		rung := -1
		if rungOf != nil {
			rung = rungOf[i]
		}
		var ps Profiles
		if pi := rung + 1; pi >= 0 && pi < len(profiles) {
			ps = profiles[pi]
		}
		d := classify(m, ps, rung, i, seen)
		plan.Decisions[i] = d
		switch d.Action {
		case Dead:
			plan.Dead++
		case Replicate:
			plan.Replicated++
		default:
			plan.Simulated++
		}
	}
	return plan
}

// classify decides one mask. seen maps equivalence classes to the index
// of their first (representative) mask.
func classify(m fault.Mask, ps Profiles, rung, idx int, seen map[classKey]int) Decision {
	if ps == nil || len(m.Sites) == 0 {
		return Decision{Action: Simulate}
	}
	allDead := true
	reason := ""
	var liveKey classKey
	for _, s := range m.Sites {
		if s.Model != fault.ModelTransient {
			// Stuck-at windows force the cell across many accesses; the
			// single-interval argument does not apply.
			return Decision{Action: Simulate}
		}
		p := ps[s.Structure]
		if p == nil || s.Entry < 0 || s.Entry >= p.Entries || s.Bit < 0 || s.Bit >= p.BitsPerEntry {
			return Decision{Action: Simulate}
		}
		evIdx, ev, ok := p.NextCovering(s.Entry, s.Bit, s.Cycle)
		switch {
		case !ok:
			if reason == "" {
				reason = ReasonNeverAccessed
			}
		case ev.Kind == bitarray.AccessWrite:
			if reason == "" {
				reason = ReasonOverwritten
			}
		case ev.Kind == bitarray.AccessEvict:
			if reason == "" {
				reason = ReasonEvicted
			}
		default: // read: the fault is live, the run must be simulated
			allDead = false
			liveKey = classKey{rung: rung, structure: s.Structure, entry: s.Entry, bit: s.Bit, event: evIdx}
		}
	}
	if allDead {
		return Decision{Action: Dead, Reason: reason}
	}
	// Equivalence collapse applies only to single-site masks: with several
	// sites the combination of intervals would have to match, which the
	// per-site keys do not capture.
	if len(m.Sites) != 1 {
		return Decision{Action: Simulate}
	}
	if rep, ok := seen[liveKey]; ok {
		return Decision{Action: Replicate, Rep: rep}
	}
	seen[liveKey] = idx
	return Decision{Action: Simulate}
}
