package prune

import (
	"testing"

	"repro/internal/bitarray"
	"repro/internal/fault"
)

// prof builds a single-structure profile set around a fixed event list
// for entry 0 of a 2×128 structure named "s".
func prof(events ...bitarray.ProfileEvent) Profiles {
	return Profiles{"s": {
		Name: "s", Entries: 2, BitsPerEntry: 128,
		Events: [][]bitarray.ProfileEvent{events, nil},
	}}
}

func mask(id int, cycle uint64) fault.Mask {
	return fault.Mask{ID: id, Sites: []fault.Site{{
		Structure: "s", Entry: 0, Bit: 5, Model: fault.ModelTransient, Cycle: cycle,
	}}}
}

func TestBuildPlanDeadReasons(t *testing.T) {
	ps := prof(
		bitarray.ProfileEvent{Cycle: 10, FirstBit: 0, NBits: 64, Kind: bitarray.AccessWrite},
		bitarray.ProfileEvent{Cycle: 20, FirstBit: 0, NBits: 64, Kind: bitarray.AccessRead},
		bitarray.ProfileEvent{Cycle: 30, FirstBit: 0, NBits: 128, Kind: bitarray.AccessEvict},
	)
	masks := []fault.Mask{
		mask(0, 5),  // write at 10 covers first → overwritten
		mask(1, 25), // evict at 30 is next → evicted
		mask(2, 31), // nothing after 30 → never accessed
		mask(3, 15), // read at 20 is next → live, must simulate
	}
	plan := BuildPlan(masks, []Profiles{ps}, nil)
	wantActions := []Action{Dead, Dead, Dead, Simulate}
	wantReasons := []string{ReasonOverwritten, ReasonEvicted, ReasonNeverAccessed, ""}
	for i, d := range plan.Decisions {
		if d.Action != wantActions[i] || d.Reason != wantReasons[i] {
			t.Errorf("mask %d: %v %q, want %v %q", i, d.Action, d.Reason, wantActions[i], wantReasons[i])
		}
	}
	if plan.Dead != 3 || plan.Simulated != 1 || plan.Replicated != 0 {
		t.Fatalf("counts dead=%d sim=%d rep=%d", plan.Dead, plan.Simulated, plan.Replicated)
	}
}

func TestBuildPlanEquivalenceCollapse(t *testing.T) {
	ps := prof(
		bitarray.ProfileEvent{Cycle: 100, FirstBit: 0, NBits: 64, Kind: bitarray.AccessRead},
		bitarray.ProfileEvent{Cycle: 200, FirstBit: 0, NBits: 64, Kind: bitarray.AccessRead},
	)
	masks := []fault.Mask{
		mask(0, 10),  // first read at 100 → interval A, representative
		mask(1, 90),  // same interval A → replicate of 0
		mask(2, 150), // read at 200 → interval B, representative
		mask(3, 100), // injection cycle == read cycle: still interval A
	}
	plan := BuildPlan(masks, []Profiles{ps}, nil)
	if d := plan.Decisions[0]; d.Action != Simulate {
		t.Fatalf("mask 0: %v", d.Action)
	}
	if d := plan.Decisions[1]; d.Action != Replicate || d.Rep != 0 {
		t.Fatalf("mask 1: %v rep=%d", d.Action, d.Rep)
	}
	if d := plan.Decisions[2]; d.Action != Simulate {
		t.Fatalf("mask 2: %v", d.Action)
	}
	if d := plan.Decisions[3]; d.Action != Replicate || d.Rep != 0 {
		t.Fatalf("mask 3: %v rep=%d", d.Action, d.Rep)
	}
	if plan.Replicated != 2 || plan.Simulated != 2 {
		t.Fatalf("counts sim=%d rep=%d", plan.Simulated, plan.Replicated)
	}
}

func TestBuildPlanRungsSeparateClasses(t *testing.T) {
	// The same interval on different restore trajectories must not
	// collapse together: the machine state at the read differs.
	ps := prof(bitarray.ProfileEvent{Cycle: 100, FirstBit: 0, NBits: 64, Kind: bitarray.AccessRead})
	masks := []fault.Mask{mask(0, 10), mask(1, 20)}
	plan := BuildPlan(masks, []Profiles{ps, ps}, []int{-1, 0})
	if d := plan.Decisions[1]; d.Action != Simulate {
		t.Fatalf("mask on a different rung collapsed: %v", d.Action)
	}
}

func TestBuildPlanDegradesToSimulate(t *testing.T) {
	ps := prof(bitarray.ProfileEvent{Cycle: 10, FirstBit: 0, NBits: 64, Kind: bitarray.AccessWrite})
	intermittent := fault.Mask{ID: 0, Sites: []fault.Site{{
		Structure: "s", Entry: 0, Bit: 5, Model: fault.ModelIntermittent, Cycle: 1, Duration: 50,
	}}}
	unknownStructure := fault.Mask{ID: 1, Sites: []fault.Site{{
		Structure: "nope", Entry: 0, Bit: 5, Model: fault.ModelTransient, Cycle: 1,
	}}}
	outOfRange := fault.Mask{ID: 2, Sites: []fault.Site{{
		Structure: "s", Entry: 99, Bit: 5, Model: fault.ModelTransient, Cycle: 1,
	}}}
	empty := fault.Mask{ID: 3}
	masks := []fault.Mask{intermittent, unknownStructure, outOfRange, empty}
	plan := BuildPlan(masks, []Profiles{ps}, nil)
	for i, d := range plan.Decisions {
		if d.Action != Simulate {
			t.Errorf("mask %d: %v, want simulate", i, d.Action)
		}
	}
	// No profile set at all: everything simulates.
	plan = BuildPlan([]fault.Mask{mask(0, 5)}, []Profiles{nil}, nil)
	if plan.Decisions[0].Action != Simulate {
		t.Fatalf("nil profiles: %v", plan.Decisions[0].Action)
	}
}

func TestBuildPlanMultiSite(t *testing.T) {
	ps := prof(
		bitarray.ProfileEvent{Cycle: 10, FirstBit: 0, NBits: 64, Kind: bitarray.AccessWrite},
		bitarray.ProfileEvent{Cycle: 20, FirstBit: 64, NBits: 64, Kind: bitarray.AccessRead},
	)
	site := func(bit int, cycle uint64) fault.Site {
		return fault.Site{Structure: "s", Entry: 0, Bit: bit, Model: fault.ModelTransient, Cycle: cycle}
	}
	allDead := fault.Mask{ID: 0, Sites: []fault.Site{site(5, 1), site(6, 1)}}
	oneLive := fault.Mask{ID: 1, Sites: []fault.Site{site(5, 1), site(70, 1)}}
	plan := BuildPlan([]fault.Mask{allDead, oneLive}, []Profiles{ps}, nil)
	if d := plan.Decisions[0]; d.Action != Dead || d.Reason != ReasonOverwritten {
		t.Fatalf("all-dead multi-site: %v %q", d.Action, d.Reason)
	}
	if d := plan.Decisions[1]; d.Action != Simulate {
		t.Fatalf("live multi-site: %v", d.Action)
	}
	// Two identical live multi-site masks must not collapse (collapse is
	// single-site only).
	twin := fault.Mask{ID: 2, Sites: oneLive.Sites}
	plan = BuildPlan([]fault.Mask{oneLive, twin}, []Profiles{ps}, nil)
	if d := plan.Decisions[1]; d.Action != Simulate {
		t.Fatalf("multi-site twin collapsed: %v", d.Action)
	}
}
