package isa

import "math"

// DivZeroPolicy selects the architectural behaviour of integer division
// by zero. The two ISAs differ here the way x86 and ARM really do, which
// is one source of differential fault behaviour: a corrupted divisor
// crashes the process on the CISC ISA but silently produces zero on the
// RISC ISA.
type DivZeroPolicy uint8

const (
	// DivZeroTrap raises a divide-error exception (x86 #DE).
	DivZeroTrap DivZeroPolicy = iota
	// DivZeroZero returns zero without trapping (ARM UDIV/SDIV).
	DivZeroZero
)

// EvalResult is the outcome of evaluating an ALU micro-op.
type EvalResult struct {
	Val     uint64
	FVal    float64
	DivZero bool // a trap-policy division by zero occurred
}

// CmpFlags computes the flags word for Cmp a − b.
func CmpFlags(a, b uint64) uint64 {
	d := a - b
	var f uint64
	if d == 0 {
		f |= FlagZ
	}
	if a < b {
		f |= FlagC
	}
	if int64(d) < 0 {
		f |= FlagN
	}
	// Signed overflow of a − b: operands differ in sign and the result
	// sign differs from a's.
	if (int64(a) < 0) != (int64(b) < 0) && (int64(d) < 0) != (int64(a) < 0) {
		f |= FlagV
	}
	return f
}

// FCmpFlags computes the flags word for an FP compare. NaN comparisons
// set C and V (unordered), matching the usual "below" encoding.
func FCmpFlags(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return FlagC | FlagV
	}
	switch {
	case a == b:
		return FlagZ
	case a < b:
		return FlagC | FlagN
	default:
		return 0
	}
}

// EvalCond evaluates a condition code against a flags word.
func EvalCond(c Cond, flags uint64) bool {
	z := flags&FlagZ != 0
	cf := flags&FlagC != 0
	n := flags&FlagN != 0
	v := flags&FlagV != 0
	switch c {
	case CondAlways:
		return true
	case CondEQ:
		return z
	case CondNE:
		return !z
	case CondLT:
		return n != v
	case CondGE:
		return n == v
	case CondLE:
		return z || n != v
	case CondGT:
		return !z && n == v
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondBE:
		return cf || z
	case CondA:
		return !cf && !z
	default:
		return false
	}
}

// EvalInt evaluates an integer ALU micro-op on operand values a and b
// (b is the immediate when the uop uses one). It implements the shared
// architectural semantics used by both simulators.
func EvalInt(op Op, a, b uint64, divPolicy DivZeroPolicy) EvalResult {
	switch op {
	case Add:
		return EvalResult{Val: a + b}
	case Sub:
		return EvalResult{Val: a - b}
	case And:
		return EvalResult{Val: a & b}
	case Or:
		return EvalResult{Val: a | b}
	case Xor:
		return EvalResult{Val: a ^ b}
	case Shl:
		return EvalResult{Val: a << (b & 63)}
	case Shr:
		return EvalResult{Val: a >> (b & 63)}
	case Sar:
		return EvalResult{Val: uint64(int64(a) >> (b & 63))}
	case Mul:
		return EvalResult{Val: a * b}
	case Div:
		if b == 0 {
			if divPolicy == DivZeroTrap {
				return EvalResult{DivZero: true}
			}
			return EvalResult{Val: 0}
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			// Overflowing quotient: x86 traps, ARM wraps.
			if divPolicy == DivZeroTrap {
				return EvalResult{DivZero: true}
			}
			return EvalResult{Val: a}
		}
		return EvalResult{Val: uint64(int64(a) / int64(b))}
	case Rem:
		if b == 0 {
			if divPolicy == DivZeroTrap {
				return EvalResult{DivZero: true}
			}
			return EvalResult{Val: a}
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return EvalResult{Val: 0}
		}
		return EvalResult{Val: uint64(int64(a) % int64(b))}
	case Mov:
		return EvalResult{Val: b}
	case Cmp:
		return EvalResult{Val: CmpFlags(a, b)}
	default:
		return EvalResult{}
	}
}

// EvalFP evaluates a floating-point ALU micro-op.
func EvalFP(op Op, a, b float64) float64 {
	switch op {
	case FAdd:
		return a + b
	case FSub:
		return a - b
	case FMul:
		return a * b
	case FDiv:
		return a / b // IEEE: ±Inf or NaN on zero divisor
	case FMov:
		return a
	default:
		return 0
	}
}

// ExtendLoad applies size truncation and sign/zero extension to a loaded
// value.
func ExtendLoad(v uint64, size uint8, signExt bool) uint64 {
	switch size {
	case 1:
		if signExt {
			return uint64(int64(int8(v)))
		}
		return uint64(uint8(v))
	case 2:
		if signExt {
			return uint64(int64(int16(v)))
		}
		return uint64(uint16(v))
	case 4:
		if signExt {
			return uint64(int64(int32(v)))
		}
		return uint64(uint32(v))
	default:
		return v
	}
}
