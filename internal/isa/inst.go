package isa

import "errors"

// MaxUops is the largest number of micro-ops a single macro-instruction
// cracks into (the CISC CALL sequence).
const MaxUops = 6

// ErrIllegal is returned by decoders for undefined encodings. The
// simulators deliver it as an illegal-instruction exception, which is one
// of the main ways instruction-cache faults become program-visible.
var ErrIllegal = errors.New("isa: illegal instruction")

// ErrTruncated is returned when the fetch buffer does not contain a whole
// instruction.
var ErrTruncated = errors.New("isa: truncated instruction")

// BranchInfo carries the front-end-relevant control-flow metadata of a
// decoded instruction.
type BranchInfo struct {
	IsBranch   bool
	IsCond     bool
	IsCall     bool
	IsRet      bool
	IsIndirect bool
	// Target is the direct target; valid when IsBranch && !IsIndirect.
	Target uint64
}

// Inst is a decoded macro-instruction: its byte length, cracked micro-ops
// and branch metadata. Decoders fill a caller-provided Inst to keep the
// fetch path allocation-free.
type Inst struct {
	Len    uint8
	NUops  uint8
	Uops   [MaxUops]Uop
	Branch BranchInfo
}

// Reset clears the instruction for reuse.
func (in *Inst) Reset() {
	*in = Inst{}
}

// Add appends a micro-op.
func (in *Inst) Add(u Uop) {
	in.Uops[in.NUops] = u
	in.NUops++
}

// Decoder is implemented by each ISA front-end.
type Decoder interface {
	// Name returns the ISA name ("x86" or "arm" in reports, matching
	// the paper's terminology for the two instruction sets).
	Name() string
	// Decode decodes the instruction at pc from buf (whose first byte
	// is the byte at pc) into inst. It returns ErrIllegal for undefined
	// encodings and ErrTruncated when buf is too short.
	Decode(buf []byte, pc uint64, inst *Inst) error
	// MaxInstLen returns the longest possible instruction in bytes.
	MaxInstLen() int
	// MinInstLen returns the shortest possible instruction in bytes.
	MinInstLen() int
	// DivZero returns the ISA's divide-by-zero policy.
	DivZero() DivZeroPolicy
}

// Exception identifies an architectural exception raised during
// simulation. The kernel package decides severity (fatal signal vs
// recorded-and-continue), which in turn drives the fault classification.
type Exception uint8

const (
	// ExcNone means no exception.
	ExcNone Exception = iota
	// ExcIllegalInstr is an undefined encoding reaching decode.
	ExcIllegalInstr
	// ExcDivZero is a trapping integer division by zero (CISC only).
	ExcDivZero
	// ExcPageFault is an access to an unmapped address.
	ExcPageFault
	// ExcProtFault is a store to read-only text or a user access to the
	// kernel-reserved region.
	ExcProtFault
	// ExcAlignment is an unaligned access on the RISC ISA; the kernel
	// fixes it up and the program continues (a DUE source).
	ExcAlignment
	// ExcSyscallErr is a syscall that failed validation (e.g. a write
	// from a bad buffer); recorded, the program continues (a DUE source).
	ExcSyscallErr
	// ExcKernelPanic is an unrecoverable kernel condition (system crash).
	ExcKernelPanic
)

var excNames = [...]string{
	ExcNone: "none", ExcIllegalInstr: "illegal-instruction", ExcDivZero: "divide-error",
	ExcPageFault: "page-fault", ExcProtFault: "protection-fault",
	ExcAlignment: "alignment", ExcSyscallErr: "syscall-error",
	ExcKernelPanic: "kernel-panic",
}

// String returns the exception name used in injection logs.
func (e Exception) String() string {
	if int(e) < len(excNames) {
		return excNames[e]
	}
	return "unknown-exception"
}
