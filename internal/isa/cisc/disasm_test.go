package cisc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestDisasmForms(t *testing.T) {
	var e Emitter
	check := func(want string) {
		t.Helper()
		got, n := Disasm(e.Code, 0x1000)
		if n != len(e.Code) {
			t.Fatalf("%q: length %d != %d", want, n, len(e.Code))
		}
		if got != want {
			t.Fatalf("disasm = %q, want %q", got, want)
		}
		e = Emitter{}
	}
	e.Nop()
	check("nop")
	e.ALURR(isa.Add, isa.R1, isa.R2)
	check("add r1, r2")
	e.ALURI(isa.Sub, isa.R3, 42)
	check("sub r3, $42")
	e.ALURR(isa.Mov, isa.R4, isa.R5)
	check("mov r4, r5")
	e.MovAbs(isa.R6, 0xdead)
	check("mov r6, $0xdead")
	e.ALURR(isa.Cmp, isa.R1, isa.R2)
	check("cmp r1, r2")
	e.Load(4, true, isa.R2, isa.R3, -8)
	check("movsl r2, [r3-8]")
	e.Store(8, isa.R2, isa.SP, 16)
	check("movq [sp+16], r2")
	e.Push(isa.R9)
	check("push r9")
	e.Pop(isa.R9)
	check("pop r9")
	e.Ret()
	check("ret")
	e.Syscall()
	check("syscall")
	e.JmpReg(isa.R7)
	check("jmp *r7")
	e.FALU(isa.FMul, isa.F1, isa.F2)
	check("fmul f1, f2")
	e.FLoad(isa.F0, isa.R1, 8)
	check("fld f0, [r1+8]")

	at := e.Jmp()
	PatchRel32(e.Code, at, 0x20)
	check("jmp 0x1025")
	at = e.Jcc(isa.CondNE)
	PatchRel32(e.Code, at, -6)
	check("jne 0x1000")
	at = e.Call()
	PatchRel32(e.Code, at, 0x100)
	check("call 0x1105")
}

func TestDisasmIllegalByte(t *testing.T) {
	got, n := Disasm([]byte{0xfe, 0x00}, 0)
	if n != 1 || !strings.HasPrefix(got, ".byte") {
		t.Fatalf("%q, %d", got, n)
	}
	got, n = Disasm(nil, 0)
	if n != 0 || got != ".end" {
		t.Fatalf("%q, %d", got, n)
	}
}

// Property: disassembly of arbitrary bytes always terminates with
// positive progress and never panics.
func TestPropDisasmTotal(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		pc := uint64(0x1000)
		for off := 0; off < len(raw); {
			_, n := Disasm(raw[off:], pc)
			if n <= 0 {
				// Only legal at a truncated tail.
				return len(raw)-off < MaxLen()
			}
			off += n
			pc += uint64(n)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// MaxLen exposes the decoder's maximum instruction length for the
// property test.
func MaxLen() int { return Decoder{}.MaxInstLen() }
