// Package cisc implements the x86-flavoured synthetic ISA: a
// variable-length (1–10 byte) encoding with two-operand ALU instructions,
// a renamed FLAGS register written by CMP and consumed by conditional
// jumps, stack-based CALL/RET that crack into micro-op sequences, and a
// trapping integer divide — the architectural traits the paper's
// differential analysis attributes to the x86 side.
package cisc

import (
	"encoding/binary"

	"repro/internal/isa"
)

// Opcode bytes. Everything outside these tables decodes as illegal.
const (
	opNOP     = 0x00
	opHALT    = 0x01
	opSYSC0   = 0x02 // first byte of the two-byte SYSCALL encoding
	opSYSC1   = 0x05 // mandatory second byte
	opALURR   = 0x10 // +aluIndex, 2 bytes: opcode, modrm(dst<<4|src)
	opALURI   = 0x30 // +aluIndex, 6 bytes: opcode, modrm(dst<<4), imm32
	opMOVABS  = 0x50 // 10 bytes: opcode, reg, imm64
	opLOAD    = 0x60 // +sizeIndex (zero-extending), 6 bytes
	opLOADS   = 0x64 // +sizeIndex (sign-extending, sizes 1,2,4), 6 bytes
	opSTORE   = 0x68 // +sizeIndex, 6 bytes
	opJMP     = 0x70 // 5 bytes: opcode, rel32
	opJCC     = 0x71 // 6 bytes: opcode, cc, rel32
	opCALL    = 0x78 // 5 bytes: opcode, rel32
	opRET     = 0x79 // 1 byte
	opJMPREG  = 0x7a // 2 bytes: opcode, reg
	opPUSH    = 0x7c // 2 bytes: opcode, reg
	opPOP     = 0x7d // 2 bytes: opcode, reg
	opFALU    = 0x80 // +fpIndex (fadd,fsub,fmul,fdiv), 2 bytes
	opFMOV    = 0x84
	opFCVTIF  = 0x85
	opFCVTFI  = 0x86
	opFMOVTOF = 0x87
	opFLOAD   = 0x88 // 6 bytes
	opFSTORE  = 0x89 // 6 bytes
	opFCMP    = 0x8a
	opFMOVFRF = 0x8d
)

// aluIndex maps micro-op ALU opcodes to opcode offsets.
var aluIndex = map[isa.Op]byte{
	isa.Add: 0, isa.Sub: 1, isa.And: 2, isa.Or: 3, isa.Xor: 4,
	isa.Shl: 5, isa.Shr: 6, isa.Sar: 7, isa.Mul: 8, isa.Div: 9,
	isa.Rem: 10, isa.Mov: 11, isa.Cmp: 12,
}

var aluOps = [...]isa.Op{
	isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
	isa.Sar, isa.Mul, isa.Div, isa.Rem, isa.Mov, isa.Cmp,
}

// loadSizes maps size index to (bytes, signExtOffset valid).
var loadSizes = [...]uint8{1, 2, 4, 8}

// ---- Emitter ----------------------------------------------------------------

// Emitter builds CISC machine code. The assembler back-end drives it.
type Emitter struct {
	Code []byte
}

// Len returns the current code length, i.e. the offset of the next
// instruction.
func (e *Emitter) Len() int { return len(e.Code) }

func (e *Emitter) b(bs ...byte) { e.Code = append(e.Code, bs...) }

func (e *Emitter) imm32(v int32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(v))
	e.Code = append(e.Code, tmp[:]...)
}

func (e *Emitter) imm64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	e.Code = append(e.Code, tmp[:]...)
}

func modrm(a, b isa.Reg) byte { return byte(a)<<4 | byte(b)&0x0f }

// Nop emits a 1-byte NOP.
func (e *Emitter) Nop() { e.b(opNOP) }

// Halt emits HALT.
func (e *Emitter) Halt() { e.b(opHALT) }

// Syscall emits the two-byte SYSCALL.
func (e *Emitter) Syscall() { e.b(opSYSC0, opSYSC1) }

// ALURR emits a two-operand register ALU instruction: dst = dst op src
// (for Mov: dst = src; for Cmp: flags = dst cmp src).
func (e *Emitter) ALURR(op isa.Op, dst, src isa.Reg) {
	e.b(opALURR+aluIndex[op], modrm(dst, src))
}

// ALURI emits a register-immediate ALU instruction with a 32-bit
// sign-extended immediate.
func (e *Emitter) ALURI(op isa.Op, dst isa.Reg, imm int32) {
	e.b(opALURI+aluIndex[op], modrm(dst, 0))
	e.imm32(imm)
}

// MovAbs emits a 64-bit immediate move.
func (e *Emitter) MovAbs(dst isa.Reg, imm uint64) {
	e.b(opMOVABS, byte(dst))
	e.imm64(imm)
}

// Load emits a load of size bytes from [base+disp] into dst.
func (e *Emitter) Load(size uint8, signExt bool, dst, base isa.Reg, disp int32) {
	op := byte(opLOAD)
	if signExt {
		op = opLOADS
	}
	switch size {
	case 1:
		// offset 0
	case 2:
		op++
	case 4:
		op += 2
	case 8:
		op = opLOAD + 3 // no sign-extending 8-byte load
	}
	e.b(op, modrm(dst, base))
	e.imm32(disp)
}

// Store emits a store of the low size bytes of src to [base+disp].
func (e *Emitter) Store(size uint8, src, base isa.Reg, disp int32) {
	var off byte
	switch size {
	case 1:
		off = 0
	case 2:
		off = 1
	case 4:
		off = 2
	case 8:
		off = 3
	}
	e.b(opSTORE+off, modrm(src, base))
	e.imm32(disp)
}

// Jmp emits a direct jump with a rel32 placeholder and returns the patch
// offset of the rel32 field.
func (e *Emitter) Jmp() int {
	e.b(opJMP)
	at := e.Len()
	e.imm32(0)
	return at
}

// Jcc emits a conditional jump and returns the rel32 patch offset.
func (e *Emitter) Jcc(cc isa.Cond) int {
	e.b(opJCC, byte(cc))
	at := e.Len()
	e.imm32(0)
	return at
}

// Call emits a direct call and returns the rel32 patch offset.
func (e *Emitter) Call() int {
	e.b(opCALL)
	at := e.Len()
	e.imm32(0)
	return at
}

// Ret emits RET.
func (e *Emitter) Ret() { e.b(opRET) }

// JmpReg emits an indirect jump through reg.
func (e *Emitter) JmpReg(r isa.Reg) { e.b(opJMPREG, byte(r)) }

// Push emits PUSH reg.
func (e *Emitter) Push(r isa.Reg) { e.b(opPUSH, byte(r)) }

// Pop emits POP reg.
func (e *Emitter) Pop(r isa.Reg) { e.b(opPOP, byte(r)) }

// FALU emits an FP two-operand ALU instruction: fd = fd op fs.
func (e *Emitter) FALU(op isa.Op, fd, fs isa.Reg) {
	var off byte
	switch op {
	case isa.FAdd:
		off = 0
	case isa.FSub:
		off = 1
	case isa.FMul:
		off = 2
	case isa.FDiv:
		off = 3
	}
	e.b(opFALU+off, modrm(isa.Reg(fd.FPIndex()), isa.Reg(fs.FPIndex())))
}

// FMov emits fd = fs.
func (e *Emitter) FMov(fd, fs isa.Reg) {
	e.b(opFMOV, modrm(isa.Reg(fd.FPIndex()), isa.Reg(fs.FPIndex())))
}

// FCvtIF emits fd = float(int src).
func (e *Emitter) FCvtIF(fd, src isa.Reg) {
	e.b(opFCVTIF, modrm(isa.Reg(fd.FPIndex()), src))
}

// FCvtFI emits dst = int(trunc fs).
func (e *Emitter) FCvtFI(dst, fs isa.Reg) {
	e.b(opFCVTFI, modrm(dst, isa.Reg(fs.FPIndex())))
}

// FMovToFP emits fd = rawbits(src).
func (e *Emitter) FMovToFP(fd, src isa.Reg) {
	e.b(opFMOVTOF, modrm(isa.Reg(fd.FPIndex()), src))
}

// FMovFromFP emits dst = rawbits(fs).
func (e *Emitter) FMovFromFP(dst, fs isa.Reg) {
	e.b(opFMOVFRF, modrm(dst, isa.Reg(fs.FPIndex())))
}

// FLoad emits fd = mem8[base+disp].
func (e *Emitter) FLoad(fd, base isa.Reg, disp int32) {
	e.b(opFLOAD, modrm(isa.Reg(fd.FPIndex()), base))
	e.imm32(disp)
}

// FStore emits mem8[base+disp] = fs.
func (e *Emitter) FStore(fs, base isa.Reg, disp int32) {
	e.b(opFSTORE, modrm(isa.Reg(fs.FPIndex()), base))
	e.imm32(disp)
}

// FCmp emits flags = compare(fa, fb).
func (e *Emitter) FCmp(fa, fb isa.Reg) {
	e.b(opFCMP, modrm(isa.Reg(fa.FPIndex()), isa.Reg(fb.FPIndex())))
}

// PatchRel32 writes a little-endian rel32 at offset at.
func PatchRel32(code []byte, at int, rel int32) {
	binary.LittleEndian.PutUint32(code[at:at+4], uint32(rel))
}

// ---- Decoder ----------------------------------------------------------------

// Decoder decodes the CISC ISA. It is stateless and safe for concurrent
// use by value.
type Decoder struct{}

var _ isa.Decoder = Decoder{}

// Name implements isa.Decoder. The reports call this ISA "x86", matching
// the paper's terminology.
func (Decoder) Name() string { return "x86" }

// MaxInstLen implements isa.Decoder.
func (Decoder) MaxInstLen() int { return 10 }

// MinInstLen implements isa.Decoder.
func (Decoder) MinInstLen() int { return 1 }

// DivZero implements isa.Decoder: the CISC ISA traps (#DE-like).
func (Decoder) DivZero() isa.DivZeroPolicy { return isa.DivZeroTrap }

func intReg(n byte) isa.Reg { return isa.Reg(n & 0x0f) }

func fpReg(n byte) (isa.Reg, bool) {
	if n&0x0f >= isa.NumFPRegs {
		return isa.RegNone, false
	}
	return isa.F0 + isa.Reg(n&0x0f), true
}

// Decode implements isa.Decoder.
func (Decoder) Decode(buf []byte, pc uint64, in *isa.Inst) error {
	in.Reset()
	if len(buf) == 0 {
		return isa.ErrTruncated
	}
	op := buf[0]
	need := func(n int) bool { return len(buf) >= n }
	rel32At := func(off int) uint64 {
		return pc + uint64(in.Len) + uint64(int64(int32(binary.LittleEndian.Uint32(buf[off:]))))
	}

	switch {
	case op == opNOP:
		in.Len = 1
		in.Add(isa.Uop{Op: isa.Nop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil

	case op == opHALT:
		in.Len = 1
		in.Add(isa.Uop{Op: isa.Halt, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil

	case op == opSYSC0:
		if !need(2) {
			return isa.ErrTruncated
		}
		if buf[1] != opSYSC1 {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.Syscall, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil

	case op >= opALURR && op < opALURR+byte(len(aluOps)):
		if !need(2) {
			return isa.ErrTruncated
		}
		in.Len = 2
		uop := aluOps[op-opALURR]
		dst, src := intReg(buf[1]>>4), intReg(buf[1])
		switch uop {
		case isa.Mov:
			in.Add(isa.Uop{Op: isa.Mov, Dst: dst, Src1: src, Src2: src})
		case isa.Cmp:
			in.Add(isa.Uop{Op: isa.Cmp, Dst: isa.Flags, Src1: dst, Src2: src})
		default:
			in.Add(isa.Uop{Op: uop, Dst: dst, Src1: dst, Src2: src})
		}
		return nil

	case op >= opALURI && op < opALURI+byte(len(aluOps)):
		if !need(6) {
			return isa.ErrTruncated
		}
		in.Len = 6
		uop := aluOps[op-opALURI]
		dst := intReg(buf[1] >> 4)
		imm := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		switch uop {
		case isa.Mov:
			in.Add(isa.Uop{Op: isa.Mov, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm, UsesImm: true})
		case isa.Cmp:
			in.Add(isa.Uop{Op: isa.Cmp, Dst: isa.Flags, Src1: dst, Src2: isa.RegNone, Imm: imm, UsesImm: true})
		default:
			in.Add(isa.Uop{Op: uop, Dst: dst, Src1: dst, Src2: isa.RegNone, Imm: imm, UsesImm: true})
		}
		return nil

	case op == opMOVABS:
		if !need(10) {
			return isa.ErrTruncated
		}
		in.Len = 10
		dst := intReg(buf[1])
		imm := int64(binary.LittleEndian.Uint64(buf[2:]))
		in.Add(isa.Uop{Op: isa.Mov, Dst: dst, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm, UsesImm: true})
		return nil

	case op >= opLOAD && op < opLOAD+4:
		if !need(6) {
			return isa.ErrTruncated
		}
		in.Len = 6
		dst, base := intReg(buf[1]>>4), intReg(buf[1])
		disp := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		in.Add(isa.Uop{Op: isa.Load, Dst: dst, Src1: base, Src2: isa.RegNone,
			Imm: disp, Size: loadSizes[op-opLOAD]})
		return nil

	case op >= opLOADS && op < opLOADS+3:
		if !need(6) {
			return isa.ErrTruncated
		}
		in.Len = 6
		dst, base := intReg(buf[1]>>4), intReg(buf[1])
		disp := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		in.Add(isa.Uop{Op: isa.Load, Dst: dst, Src1: base, Src2: isa.RegNone,
			Imm: disp, Size: loadSizes[op-opLOADS], SignExt: true})
		return nil

	case op >= opSTORE && op < opSTORE+4:
		if !need(6) {
			return isa.ErrTruncated
		}
		in.Len = 6
		src, base := intReg(buf[1]>>4), intReg(buf[1])
		disp := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		in.Add(isa.Uop{Op: isa.Store, Dst: isa.RegNone, Src1: base, Src2: src,
			Imm: disp, Size: loadSizes[op-opSTORE]})
		return nil

	case op == opJMP:
		if !need(5) {
			return isa.ErrTruncated
		}
		in.Len = 5
		in.Add(isa.Uop{Op: isa.Jmp, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		in.Branch = isa.BranchInfo{IsBranch: true, Target: rel32At(1)}
		return nil

	case op == opJCC:
		if !need(6) {
			return isa.ErrTruncated
		}
		if buf[1] >= byte(isa.NumConds) {
			return isa.ErrIllegal
		}
		in.Len = 6
		cc := isa.Cond(buf[1])
		in.Add(isa.Uop{Op: isa.BrFlags, Dst: isa.RegNone, Src1: isa.Flags, Src2: isa.RegNone, Cond: cc})
		in.Branch = isa.BranchInfo{IsBranch: true, IsCond: true, Target: rel32At(2)}
		return nil

	case op == opCALL:
		if !need(5) {
			return isa.ErrTruncated
		}
		in.Len = 5
		ret := int64(pc + 5)
		// CALL cracks into: materialize return address, push it, jump.
		in.Add(isa.Uop{Op: isa.Mov, Dst: isa.T1, Src1: isa.RegNone, Src2: isa.RegNone, Imm: ret, UsesImm: true})
		in.Add(isa.Uop{Op: isa.Sub, Dst: isa.SP, Src1: isa.SP, Src2: isa.RegNone, Imm: 8, UsesImm: true})
		in.Add(isa.Uop{Op: isa.Store, Dst: isa.RegNone, Src1: isa.SP, Src2: isa.T1, Imm: 0, Size: 8})
		in.Add(isa.Uop{Op: isa.Call, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		in.Branch = isa.BranchInfo{IsBranch: true, IsCall: true, Target: rel32At(1)}
		return nil

	case op == opRET:
		in.Len = 1
		// RET cracks into: pop return address, jump to it.
		in.Add(isa.Uop{Op: isa.Load, Dst: isa.T0, Src1: isa.SP, Src2: isa.RegNone, Imm: 0, Size: 8})
		in.Add(isa.Uop{Op: isa.Add, Dst: isa.SP, Src1: isa.SP, Src2: isa.RegNone, Imm: 8, UsesImm: true})
		in.Add(isa.Uop{Op: isa.Ret, Dst: isa.RegNone, Src1: isa.T0, Src2: isa.RegNone})
		in.Branch = isa.BranchInfo{IsBranch: true, IsRet: true, IsIndirect: true}
		return nil

	case op == opJMPREG:
		if !need(2) {
			return isa.ErrTruncated
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.JmpReg, Dst: isa.RegNone, Src1: intReg(buf[1]), Src2: isa.RegNone})
		in.Branch = isa.BranchInfo{IsBranch: true, IsIndirect: true}
		return nil

	case op == opPUSH:
		if !need(2) {
			return isa.ErrTruncated
		}
		in.Len = 2
		r := intReg(buf[1])
		in.Add(isa.Uop{Op: isa.Sub, Dst: isa.SP, Src1: isa.SP, Src2: isa.RegNone, Imm: 8, UsesImm: true})
		in.Add(isa.Uop{Op: isa.Store, Dst: isa.RegNone, Src1: isa.SP, Src2: r, Imm: 0, Size: 8})
		return nil

	case op == opPOP:
		if !need(2) {
			return isa.ErrTruncated
		}
		in.Len = 2
		r := intReg(buf[1])
		in.Add(isa.Uop{Op: isa.Load, Dst: r, Src1: isa.SP, Src2: isa.RegNone, Imm: 0, Size: 8})
		in.Add(isa.Uop{Op: isa.Add, Dst: isa.SP, Src1: isa.SP, Src2: isa.RegNone, Imm: 8, UsesImm: true})
		return nil

	case op >= opFALU && op <= opFMOVFRF:
		return decodeFP(op, buf, in)
	}
	return isa.ErrIllegal
}

func decodeFP(op byte, buf []byte, in *isa.Inst) error {
	if len(buf) < 2 {
		return isa.ErrTruncated
	}
	hi, lo := buf[1]>>4, buf[1]&0x0f
	switch op {
	case opFALU, opFALU + 1, opFALU + 2, opFALU + 3:
		fd, ok1 := fpReg(hi)
		fs, ok2 := fpReg(lo)
		if !ok1 || !ok2 {
			return isa.ErrIllegal
		}
		in.Len = 2
		fop := [...]isa.Op{isa.FAdd, isa.FSub, isa.FMul, isa.FDiv}[op-opFALU]
		in.Add(isa.Uop{Op: fop, Dst: fd, Src1: fd, Src2: fs})
		return nil
	case opFMOV:
		fd, ok1 := fpReg(hi)
		fs, ok2 := fpReg(lo)
		if !ok1 || !ok2 {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FMov, Dst: fd, Src1: fs, Src2: fs})
		return nil
	case opFCVTIF:
		fd, ok := fpReg(hi)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FCvtIF, Dst: fd, Src1: intReg(lo), Src2: isa.RegNone})
		return nil
	case opFCVTFI:
		fs, ok := fpReg(lo)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FCvtFI, Dst: intReg(hi), Src1: fs, Src2: isa.RegNone})
		return nil
	case opFMOVTOF:
		fd, ok := fpReg(hi)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FMovToFP, Dst: fd, Src1: intReg(lo), Src2: isa.RegNone})
		return nil
	case opFMOVFRF:
		fs, ok := fpReg(lo)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FMovFromFP, Dst: intReg(hi), Src1: fs, Src2: isa.RegNone})
		return nil
	case opFLOAD:
		if len(buf) < 6 {
			return isa.ErrTruncated
		}
		fd, ok := fpReg(hi)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 6
		disp := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		in.Add(isa.Uop{Op: isa.FLoad, Dst: fd, Src1: intReg(lo), Src2: isa.RegNone, Imm: disp, Size: 8})
		return nil
	case opFSTORE:
		if len(buf) < 6 {
			return isa.ErrTruncated
		}
		fs, ok := fpReg(hi)
		if !ok {
			return isa.ErrIllegal
		}
		in.Len = 6
		disp := int64(int32(binary.LittleEndian.Uint32(buf[2:])))
		in.Add(isa.Uop{Op: isa.FStore, Dst: isa.RegNone, Src1: intReg(lo), Src2: fs, Imm: disp, Size: 8})
		return nil
	case opFCMP:
		fa, ok1 := fpReg(hi)
		fb, ok2 := fpReg(lo)
		if !ok1 || !ok2 {
			return isa.ErrIllegal
		}
		in.Len = 2
		in.Add(isa.Uop{Op: isa.FCmp, Dst: isa.Flags, Src1: fa, Src2: fb})
		return nil
	}
	return isa.ErrIllegal
}
