package cisc

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Disasm decodes and formats the instruction at pc, returning the
// rendered text and the instruction length. Undecodable bytes render as
// ".byte 0x.." with length 1, so a disassembly walk always makes
// progress (exactly how a debugger walks a corrupted text segment).
func Disasm(buf []byte, pc uint64) (string, int) {
	var in isa.Inst
	if err := (Decoder{}).Decode(buf, pc, &in); err != nil {
		if len(buf) == 0 {
			return ".end", 0
		}
		return fmt.Sprintf(".byte 0x%02x", buf[0]), 1
	}
	return render(&in), int(in.Len)
}

func render(in *isa.Inst) string {
	b := in.Branch
	u := in.Uops[0]
	switch {
	case b.IsCall:
		return fmt.Sprintf("call 0x%x", b.Target)
	case b.IsRet:
		return "ret"
	case b.IsBranch && b.IsIndirect:
		return fmt.Sprintf("jmp *%s", in.Uops[0].Src1)
	case b.IsBranch && b.IsCond:
		return fmt.Sprintf("j%s 0x%x", u.Cond, b.Target)
	case b.IsBranch:
		return fmt.Sprintf("jmp 0x%x", b.Target)
	}
	// PUSH/POP render from their cracked pair.
	if in.NUops == 2 {
		if in.Uops[0].Op == isa.Sub && in.Uops[1].Op == isa.Store {
			return fmt.Sprintf("push %s", in.Uops[1].Src2)
		}
		if in.Uops[0].Op == isa.Load && in.Uops[1].Op == isa.Add {
			return fmt.Sprintf("pop %s", in.Uops[0].Dst)
		}
	}
	switch u.Op {
	case isa.Nop:
		return "nop"
	case isa.Halt:
		return "hlt"
	case isa.Syscall:
		return "syscall"
	case isa.Load:
		return fmt.Sprintf("mov%s %s, [%s%+d]", sizeSuffix(u.Size, u.SignExt), u.Dst, u.Src1, u.Imm)
	case isa.FLoad:
		return fmt.Sprintf("fld %s, [%s%+d]", u.Dst, u.Src1, u.Imm)
	case isa.Store:
		return fmt.Sprintf("mov%s [%s%+d], %s", sizeSuffix(u.Size, false), u.Src1, u.Imm, u.Src2)
	case isa.FStore:
		return fmt.Sprintf("fst [%s%+d], %s", u.Src1, u.Imm, u.Src2)
	case isa.Mov:
		if u.UsesImm {
			return fmt.Sprintf("mov %s, $0x%x", u.Dst, uint64(u.Imm))
		}
		return fmt.Sprintf("mov %s, %s", u.Dst, u.Src2)
	case isa.Cmp:
		if u.UsesImm {
			return fmt.Sprintf("cmp %s, $%d", u.Src1, u.Imm)
		}
		return fmt.Sprintf("cmp %s, %s", u.Src1, u.Src2)
	case isa.FCmp:
		return fmt.Sprintf("fcmp %s, %s", u.Src1, u.Src2)
	}
	mn := strings.ToLower(u.Op.String())
	if u.UsesImm {
		return fmt.Sprintf("%s %s, $%d", mn, u.Dst, u.Imm)
	}
	return fmt.Sprintf("%s %s, %s", mn, u.Dst, u.Src2)
}

func sizeSuffix(size uint8, signExt bool) string {
	s := map[uint8]string{1: "b", 2: "w", 4: "l", 8: "q"}[size]
	if signExt {
		return "s" + s
	}
	return s
}
