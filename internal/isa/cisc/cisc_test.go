package cisc

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func decodeOne(t *testing.T, code []byte, pc uint64) isa.Inst {
	t.Helper()
	var in isa.Inst
	if err := (Decoder{}).Decode(code, pc, &in); err != nil {
		t.Fatalf("decode %x: %v", code, err)
	}
	return in
}

func TestDecoderMeta(t *testing.T) {
	d := Decoder{}
	if d.Name() != "x86" || d.MaxInstLen() != 10 || d.MinInstLen() != 1 {
		t.Fatal("decoder metadata")
	}
	if d.DivZero() != isa.DivZeroTrap {
		t.Fatal("CISC must trap on divide by zero")
	}
}

func TestNopHaltSyscall(t *testing.T) {
	var e Emitter
	e.Nop()
	e.Halt()
	e.Syscall()
	in := decodeOne(t, e.Code, 0)
	if in.Len != 1 || in.Uops[0].Op != isa.Nop {
		t.Fatal("nop")
	}
	in = decodeOne(t, e.Code[1:], 1)
	if in.Uops[0].Op != isa.Halt {
		t.Fatal("halt")
	}
	in = decodeOne(t, e.Code[2:], 2)
	if in.Len != 2 || in.Uops[0].Op != isa.Syscall {
		t.Fatal("syscall")
	}
}

func TestALURoundTrip(t *testing.T) {
	ops := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl,
		isa.Shr, isa.Sar, isa.Mul, isa.Div, isa.Rem}
	for _, op := range ops {
		var e Emitter
		e.ALURR(op, isa.R3, isa.R7)
		in := decodeOne(t, e.Code, 0)
		u := in.Uops[0]
		if in.NUops != 1 || u.Op != op || u.Dst != isa.R3 || u.Src1 != isa.R3 || u.Src2 != isa.R7 {
			t.Errorf("%v rr: %+v", op, u)
		}
		e = Emitter{}
		e.ALURI(op, isa.R5, -12345)
		in = decodeOne(t, e.Code, 0)
		u = in.Uops[0]
		if in.Len != 6 || u.Op != op || u.Dst != isa.R5 || u.Src1 != isa.R5 || !u.UsesImm || u.Imm != -12345 {
			t.Errorf("%v ri: %+v", op, u)
		}
	}
}

func TestMovAndCmp(t *testing.T) {
	var e Emitter
	e.ALURR(isa.Mov, isa.R1, isa.R2)
	in := decodeOne(t, e.Code, 0)
	u := in.Uops[0]
	if u.Op != isa.Mov || u.Dst != isa.R1 || u.Src2 != isa.R2 {
		t.Fatalf("mov rr: %+v", u)
	}
	e = Emitter{}
	e.ALURR(isa.Cmp, isa.R1, isa.R2)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.Cmp || u.Dst != isa.Flags || u.Src1 != isa.R1 || u.Src2 != isa.R2 {
		t.Fatalf("cmp rr: %+v", u)
	}
	e = Emitter{}
	e.ALURI(isa.Cmp, isa.R9, 77)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.Cmp || u.Dst != isa.Flags || u.Src1 != isa.R9 || u.Imm != 77 || !u.UsesImm {
		t.Fatalf("cmp ri: %+v", u)
	}
	e = Emitter{}
	e.MovAbs(isa.R4, 0xdeadbeefcafef00d)
	in = decodeOne(t, e.Code, 0)
	u = in.Uops[0]
	if in.Len != 10 || u.Op != isa.Mov || u.Dst != isa.R4 || uint64(u.Imm) != 0xdeadbeefcafef00d {
		t.Fatalf("movabs: %+v", u)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, sz := range []uint8{1, 2, 4, 8} {
		for _, sx := range []bool{false, true} {
			if sx && sz == 8 {
				continue
			}
			var e Emitter
			e.Load(sz, sx, isa.R2, isa.R10, -64)
			in := decodeOne(t, e.Code, 0)
			u := in.Uops[0]
			if u.Op != isa.Load || u.Dst != isa.R2 || u.Src1 != isa.R10 ||
				u.Imm != -64 || u.Size != sz || u.SignExt != sx {
				t.Errorf("load sz=%d sx=%v: %+v", sz, sx, u)
			}
		}
		var e Emitter
		e.Store(sz, isa.R6, isa.SP, 256)
		u := decodeOne(t, e.Code, 0).Uops[0]
		if u.Op != isa.Store || u.Src2 != isa.R6 || u.Src1 != isa.SP || u.Imm != 256 || u.Size != sz {
			t.Errorf("store sz=%d: %+v", sz, u)
		}
	}
}

func TestBranches(t *testing.T) {
	var e Emitter
	at := e.Jmp()
	PatchRel32(e.Code, at, 100)
	in := decodeOne(t, e.Code, 0x1000)
	if !in.Branch.IsBranch || in.Branch.IsCond || in.Branch.Target != 0x1000+5+100 {
		t.Fatalf("jmp: %+v", in.Branch)
	}
	e = Emitter{}
	at = e.Jcc(isa.CondLT)
	PatchRel32(e.Code, at, -24)
	in = decodeOne(t, e.Code, 0x2000)
	if !in.Branch.IsCond || in.Branch.Target != 0x2000+6-24 {
		t.Fatalf("jcc: %+v", in.Branch)
	}
	if in.Uops[0].Op != isa.BrFlags || in.Uops[0].Src1 != isa.Flags || in.Uops[0].Cond != isa.CondLT {
		t.Fatalf("jcc uop: %+v", in.Uops[0])
	}
}

func TestCallCracksToPush(t *testing.T) {
	var e Emitter
	at := e.Call()
	PatchRel32(e.Code, at, 0x80)
	in := decodeOne(t, e.Code, 0x4000)
	if !in.Branch.IsCall || in.Branch.Target != 0x4000+5+0x80 {
		t.Fatalf("call branch: %+v", in.Branch)
	}
	if in.NUops != 4 {
		t.Fatalf("call cracks to %d uops, want 4", in.NUops)
	}
	// Return address materialized, stack decremented, stored, then jump.
	if in.Uops[0].Op != isa.Mov || uint64(in.Uops[0].Imm) != 0x4005 {
		t.Fatalf("uop0: %+v", in.Uops[0])
	}
	if in.Uops[1].Op != isa.Sub || in.Uops[1].Dst != isa.SP {
		t.Fatalf("uop1: %+v", in.Uops[1])
	}
	if in.Uops[2].Op != isa.Store || in.Uops[2].Src1 != isa.SP || in.Uops[2].Size != 8 {
		t.Fatalf("uop2: %+v", in.Uops[2])
	}
	if in.Uops[3].Op != isa.Call {
		t.Fatalf("uop3: %+v", in.Uops[3])
	}
}

func TestRetCracksToPop(t *testing.T) {
	var e Emitter
	e.Ret()
	in := decodeOne(t, e.Code, 0)
	if !in.Branch.IsRet || !in.Branch.IsIndirect {
		t.Fatalf("ret branch: %+v", in.Branch)
	}
	if in.NUops != 3 || in.Uops[0].Op != isa.Load || in.Uops[2].Op != isa.Ret {
		t.Fatalf("ret uops: %d %+v", in.NUops, in.Uops)
	}
}

func TestPushPop(t *testing.T) {
	var e Emitter
	e.Push(isa.R8)
	in := decodeOne(t, e.Code, 0)
	if in.NUops != 2 || in.Uops[1].Op != isa.Store || in.Uops[1].Src2 != isa.R8 {
		t.Fatalf("push: %+v", in.Uops)
	}
	e = Emitter{}
	e.Pop(isa.R8)
	in = decodeOne(t, e.Code, 0)
	if in.NUops != 2 || in.Uops[0].Op != isa.Load || in.Uops[0].Dst != isa.R8 {
		t.Fatalf("pop: %+v", in.Uops)
	}
}

func TestFPRoundTrip(t *testing.T) {
	var e Emitter
	e.FALU(isa.FMul, isa.F2, isa.F5)
	u := decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMul || u.Dst != isa.F2 || u.Src1 != isa.F2 || u.Src2 != isa.F5 {
		t.Fatalf("fmul: %+v", u)
	}
	e = Emitter{}
	e.FLoad(isa.F1, isa.R3, 40)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FLoad || u.Dst != isa.F1 || u.Src1 != isa.R3 || u.Imm != 40 {
		t.Fatalf("fload: %+v", u)
	}
	e = Emitter{}
	e.FStore(isa.F6, isa.R2, -8)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FStore || u.Src2 != isa.F6 || u.Src1 != isa.R2 || u.Imm != -8 {
		t.Fatalf("fstore: %+v", u)
	}
	e = Emitter{}
	e.FCvtIF(isa.F0, isa.R1)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCvtIF || u.Dst != isa.F0 || u.Src1 != isa.R1 {
		t.Fatalf("fcvtif: %+v", u)
	}
	e = Emitter{}
	e.FCvtFI(isa.R1, isa.F3)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCvtFI || u.Dst != isa.R1 || u.Src1 != isa.F3 {
		t.Fatalf("fcvtfi: %+v", u)
	}
	e = Emitter{}
	e.FCmp(isa.F1, isa.F2)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCmp || u.Dst != isa.Flags {
		t.Fatalf("fcmp: %+v", u)
	}
	e = Emitter{}
	e.FMovToFP(isa.F4, isa.R9)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMovToFP || u.Dst != isa.F4 || u.Src1 != isa.R9 {
		t.Fatalf("fmovtofp: %+v", u)
	}
	e = Emitter{}
	e.FMovFromFP(isa.R9, isa.F4)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMovFromFP || u.Dst != isa.R9 || u.Src1 != isa.F4 {
		t.Fatalf("fmovfromfp: %+v", u)
	}
}

func TestIllegalAndTruncated(t *testing.T) {
	d := Decoder{}
	var in isa.Inst
	if err := d.Decode([]byte{0xff}, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("0xff: %v", err)
	}
	if err := d.Decode([]byte{0x02, 0x99}, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("bad syscall second byte: %v", err)
	}
	if err := d.Decode(nil, 0, &in); err != isa.ErrTruncated {
		t.Fatalf("empty: %v", err)
	}
	if err := d.Decode([]byte{opALURI}, 0, &in); err != isa.ErrTruncated {
		t.Fatalf("truncated aluri: %v", err)
	}
	// FP register fields above 7 are illegal.
	if err := d.Decode([]byte{opFALU, 0x9f}, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("fp reg 9: %v", err)
	}
	// Jcc with an undefined condition code is illegal.
	if err := d.Decode([]byte{opJCC, 0x20, 0, 0, 0, 0}, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("bad cc: %v", err)
	}
}

// Property: the decoder never panics on arbitrary byte sequences — faulty
// instruction bytes must surface as ErrIllegal/ErrTruncated, not as a
// simulator crash at the Go level.
func TestPropDecodeNeverPanics(t *testing.T) {
	d := Decoder{}
	f := func(raw []byte, pc uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		var in isa.Inst
		err := d.Decode(raw, pc, &in)
		if err == nil && (in.Len == 0 || int(in.Len) > len(raw) || in.NUops == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
