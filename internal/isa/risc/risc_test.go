package risc

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func decodeOne(t *testing.T, code []byte, pc uint64) isa.Inst {
	t.Helper()
	var in isa.Inst
	if err := (Decoder{}).Decode(code, pc, &in); err != nil {
		t.Fatalf("decode %x: %v", code, err)
	}
	return in
}

func TestDecoderMeta(t *testing.T) {
	d := Decoder{}
	if d.Name() != "arm" || d.MaxInstLen() != 4 || d.MinInstLen() != 4 {
		t.Fatal("decoder metadata")
	}
	if d.DivZero() != isa.DivZeroZero {
		t.Fatal("RISC divide by zero must be non-trapping")
	}
}

func TestALU3RoundTrip(t *testing.T) {
	for _, op := range aluOps {
		var e Emitter
		e.ALU3(op, isa.R3, isa.R7, isa.R11)
		in := decodeOne(t, e.Code, 0)
		u := in.Uops[0]
		if in.Len != 4 || u.Op != op || u.Dst != isa.R3 || u.Src1 != isa.R7 || u.Src2 != isa.R11 {
			t.Errorf("%v: %+v", op, u)
		}
		e = Emitter{}
		e.ALUI(op, isa.R2, isa.R4, -1000)
		u = decodeOne(t, e.Code, 0).Uops[0]
		if u.Op != op || u.Dst != isa.R2 || u.Src1 != isa.R4 || !u.UsesImm || u.Imm != -1000 {
			t.Errorf("%v imm: %+v", op, u)
		}
	}
}

func TestMovRoundTrip(t *testing.T) {
	var e Emitter
	e.MovR(isa.R1, isa.R9)
	u := decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.Mov || u.Dst != isa.R1 || u.Src2 != isa.R9 {
		t.Fatalf("movr: %+v", u)
	}
}

func TestMovZMovK(t *testing.T) {
	var e Emitter
	e.MovZ(isa.R5, 0xbeef, 1)
	in := decodeOne(t, e.Code, 0)
	u := in.Uops[0]
	if u.Op != isa.Mov || u.Dst != isa.R5 || uint64(u.Imm) != 0xbeef0000 || !u.UsesImm {
		t.Fatalf("movz: %+v", u)
	}
	e = Emitter{}
	e.MovK(isa.R5, 0x1234, 2)
	in = decodeOne(t, e.Code, 0)
	if in.NUops != 2 {
		t.Fatalf("movk cracks to %d uops", in.NUops)
	}
	and, or := in.Uops[0], in.Uops[1]
	if and.Op != isa.And || uint64(and.Imm) != ^(uint64(0xffff)<<32) {
		t.Fatalf("movk and: %+v", and)
	}
	if or.Op != isa.Or || uint64(or.Imm) != uint64(0x1234)<<32 {
		t.Fatalf("movk or: %+v", or)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, sz := range []uint8{1, 2, 4, 8} {
		for _, sx := range []bool{false, true} {
			if sx && sz == 8 {
				continue
			}
			var e Emitter
			e.Load(sz, sx, isa.R2, isa.R10, -64)
			u := decodeOne(t, e.Code, 0).Uops[0]
			if u.Op != isa.Load || u.Dst != isa.R2 || u.Src1 != isa.R10 ||
				u.Imm != -64 || u.Size != sz || u.SignExt != sx {
				t.Errorf("load sz=%d sx=%v: %+v", sz, sx, u)
			}
		}
		var e Emitter
		e.Store(sz, isa.R6, isa.SP, 100)
		u := decodeOne(t, e.Code, 0).Uops[0]
		if u.Op != isa.Store || u.Src2 != isa.R6 || u.Src1 != isa.SP || u.Imm != 100 || u.Size != sz {
			t.Errorf("store sz=%d: %+v", sz, u)
		}
	}
}

func TestCompareBranch(t *testing.T) {
	var e Emitter
	at := e.CB(isa.CondGE, isa.R1, isa.R2)
	PatchCB(e.Code, at, -16)
	in := decodeOne(t, e.Code, 0x1000)
	u := in.Uops[0]
	if u.Op != isa.BrCmp || u.Src1 != isa.R1 || u.Src2 != isa.R2 || u.Cond != isa.CondGE {
		t.Fatalf("cb uop: %+v", u)
	}
	if !in.Branch.IsBranch || !in.Branch.IsCond || in.Branch.Target != 0x1000-16 {
		t.Fatalf("cb branch: %+v", in.Branch)
	}
}

func TestBranchOnFlags(t *testing.T) {
	var e Emitter
	at := e.BF(isa.CondLT, isa.R12)
	PatchCB(e.Code, at, 32)
	in := decodeOne(t, e.Code, 0x500)
	u := in.Uops[0]
	if u.Op != isa.BrFlags || u.Src1 != isa.R12 || u.Cond != isa.CondLT {
		t.Fatalf("bf uop: %+v", u)
	}
	if in.Branch.Target != 0x500+32 {
		t.Fatalf("bf target: %#x", in.Branch.Target)
	}
}

func TestBAndBL(t *testing.T) {
	var e Emitter
	at := e.B()
	PatchB(e.Code, at, 0x10000)
	in := decodeOne(t, e.Code, 0x8000)
	if !in.Branch.IsBranch || in.Branch.IsCond || in.Branch.Target != 0x18000 {
		t.Fatalf("b: %+v", in.Branch)
	}
	e = Emitter{}
	at = e.BL()
	PatchB(e.Code, at, -0x2000)
	in = decodeOne(t, e.Code, 0x8000)
	if !in.Branch.IsCall || in.Branch.Target != 0x6000 {
		t.Fatalf("bl branch: %+v", in.Branch)
	}
	u := in.Uops[0]
	if u.Op != isa.Call || u.Dst != isa.LR || uint64(u.Imm) != 0x8004 {
		t.Fatalf("bl uop: %+v", u)
	}
}

func TestBRAndRet(t *testing.T) {
	var e Emitter
	e.BR(isa.R4)
	in := decodeOne(t, e.Code, 0)
	if in.Uops[0].Op != isa.JmpReg || in.Branch.IsRet || !in.Branch.IsIndirect {
		t.Fatalf("br: %+v %+v", in.Uops[0], in.Branch)
	}
	e = Emitter{}
	e.BR(isa.LR)
	in = decodeOne(t, e.Code, 0)
	if in.Uops[0].Op != isa.Ret || !in.Branch.IsRet {
		t.Fatalf("ret: %+v %+v", in.Uops[0], in.Branch)
	}
}

func TestFPRoundTrip(t *testing.T) {
	var e Emitter
	e.FALU(isa.FDiv, isa.F1, isa.F2, isa.F3)
	u := decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FDiv || u.Dst != isa.F1 || u.Src1 != isa.F2 || u.Src2 != isa.F3 {
		t.Fatalf("fdiv: %+v", u)
	}
	e = Emitter{}
	e.FLoad(isa.F7, isa.R1, 24)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FLoad || u.Dst != isa.F7 || u.Src1 != isa.R1 || u.Imm != 24 {
		t.Fatalf("fldr: %+v", u)
	}
	e = Emitter{}
	e.FStore(isa.F5, isa.R2, -48)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FStore || u.Src2 != isa.F5 || u.Src1 != isa.R2 || u.Imm != -48 {
		t.Fatalf("fstr: %+v", u)
	}
	e = Emitter{}
	e.FCmp(isa.R3, isa.F1, isa.F0)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCmp || u.Dst != isa.R3 || u.Src1 != isa.F1 || u.Src2 != isa.F0 {
		t.Fatalf("fcmp: %+v", u)
	}
	e = Emitter{}
	e.FMov(isa.F2, isa.F6)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMov || u.Dst != isa.F2 || u.Src1 != isa.F6 {
		t.Fatalf("fmov: %+v", u)
	}
	e = Emitter{}
	e.FCvtIF(isa.F3, isa.R8)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCvtIF || u.Dst != isa.F3 || u.Src1 != isa.R8 {
		t.Fatalf("fcvtif: %+v", u)
	}
	e = Emitter{}
	e.FCvtFI(isa.R8, isa.F3)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FCvtFI || u.Dst != isa.R8 || u.Src1 != isa.F3 {
		t.Fatalf("fcvtfi: %+v", u)
	}
	e = Emitter{}
	e.FMovToFP(isa.F0, isa.R0)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMovToFP {
		t.Fatalf("fmovtofp: %+v", u)
	}
	e = Emitter{}
	e.FMovFromFP(isa.R0, isa.F0)
	u = decodeOne(t, e.Code, 0).Uops[0]
	if u.Op != isa.FMovFromFP {
		t.Fatalf("fmovfromfp: %+v", u)
	}
}

func TestIllegalAndTruncated(t *testing.T) {
	d := Decoder{}
	var in isa.Inst
	if err := d.Decode([]byte{0, 0, 0, 0xff}, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("0xff opcode: %v", err)
	}
	if err := d.Decode([]byte{0, 0}, 0, &in); err != isa.ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	// FP field out of range: FALU with rd nibble = 9.
	var e Emitter
	e.w(enc(opFALU, isa.Reg(9), 0, 0, 0))
	if err := d.Decode(e.Code, 0, &in); err != isa.ErrIllegal {
		t.Fatalf("fp reg 9: %v", err)
	}
}

func TestPatchRangeChecks(t *testing.T) {
	var e Emitter
	at := e.CB(isa.CondEQ, isa.R0, isa.R1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range CB patch did not panic")
		}
	}()
	PatchCB(e.Code, at, 1<<14)
}

// Property: the decoder never panics on arbitrary 4-byte words.
func TestPropDecodeNeverPanics(t *testing.T) {
	d := Decoder{}
	f := func(w uint32, pc uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
		var in isa.Inst
		err := d.Decode(buf, pc, &in)
		if err == nil && in.NUops == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
