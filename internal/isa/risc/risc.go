// Package risc implements the ARM-flavoured synthetic ISA: a fixed
// 4-byte encoding with three-operand ALU instructions, MOVZ/MOVK
// immediate materialization, fused compare-and-branch, link-register
// BL/RET and non-trapping integer division — the architectural traits the
// paper's differential analysis attributes to the ARM side.
package risc

import (
	"encoding/binary"

	"repro/internal/isa"
)

// InstLen is the fixed instruction length in bytes.
const InstLen = 4

// Opcode values (bits [31:24]).
const (
	opNOP   = 0x00
	opHALT  = 0x01
	opSYSC  = 0x02
	opALU3  = 0x10 // +aluIndex: rd = ra op rb
	opMOVR  = 0x1b // rd = ra
	opMOVZ  = 0x20 // rd = imm16 << (hw*16)
	opMOVK  = 0x21 // rd |= imm16 << (hw*16) (inserts, keeping others)
	opALUI  = 0x30 // +aluIndex: rd = ra op simm12
	opCB    = 0x40 // |cond: compare-and-branch ra ? rb, imm12<<2
	opBF    = 0x58 // |cond&7: branch on flags word in ra; see note below
	opB     = 0x50 // imm24<<2 relative
	opBL    = 0x51 // imm24<<2 relative, writes LR
	opBR    = 0x52 // indirect branch to ra; RET when ra == LR
	opLOAD  = 0x60 // +sizeIndex zero-extending; +4 sign-extending (1,2,4)
	opSTORE = 0x68 // +sizeIndex: mem[ra+imm12] = rb
	opFALU  = 0x80 // fadd,fsub,fmul,fdiv: fd = fa op fb
	opFMOV  = 0x84
	opFCVIF = 0x85
	opFCVFI = 0x86
	opFMVTF = 0x87
	opFLDR  = 0x88
	opFSTR  = 0x89
	opFCMP  = 0x8a // rd(int) = flags(fa ? fb)
	opFMVFF = 0x8d
)

// Note on opBF: the RISC ISA has no architectural flags register; FCMP
// deposits a flags word into a general register and BF.cc branches on it.
// Because the opcode carries only 3 condition bits, BF supports the first
// eight condition codes (al,eq,ne,lt,ge,le,gt,b), which is sufficient for
// floating-point control flow.

var aluOps = [...]isa.Op{
	isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
	isa.Sar, isa.Mul, isa.Div, isa.Rem,
}

var aluIndex = map[isa.Op]uint32{
	isa.Add: 0, isa.Sub: 1, isa.And: 2, isa.Or: 3, isa.Xor: 4,
	isa.Shl: 5, isa.Shr: 6, isa.Sar: 7, isa.Mul: 8, isa.Div: 9, isa.Rem: 10,
}

var loadSizes = [...]uint8{1, 2, 4, 8}

// ---- Emitter ----------------------------------------------------------------

// Emitter builds RISC machine code.
type Emitter struct {
	Code []byte
}

// Len returns the current code length.
func (e *Emitter) Len() int { return len(e.Code) }

func (e *Emitter) w(word uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], word)
	e.Code = append(e.Code, tmp[:]...)
}

func enc(op uint32, rd, ra, rb isa.Reg, imm12 int32) uint32 {
	return op<<24 | uint32(rd&0xf)<<20 | uint32(ra&0xf)<<16 |
		uint32(rb&0xf)<<12 | uint32(imm12)&0xfff
}

// Nop emits NOP.
func (e *Emitter) Nop() { e.w(enc(opNOP, 0, 0, 0, 0)) }

// Halt emits HALT.
func (e *Emitter) Halt() { e.w(enc(opHALT, 0, 0, 0, 0)) }

// Syscall emits SYSCALL.
func (e *Emitter) Syscall() { e.w(enc(opSYSC, 0, 0, 0, 0)) }

// ALU3 emits rd = ra op rb.
func (e *Emitter) ALU3(op isa.Op, rd, ra, rb isa.Reg) {
	e.w(enc(opALU3+aluIndex[op], rd, ra, rb, 0))
}

// MovR emits rd = ra.
func (e *Emitter) MovR(rd, ra isa.Reg) { e.w(enc(opMOVR, rd, ra, 0, 0)) }

// ALUI emits rd = ra op simm12. The immediate must fit in 12 signed bits;
// the assembler back-end materializes larger immediates.
func (e *Emitter) ALUI(op isa.Op, rd, ra isa.Reg, imm int32) {
	e.w(enc(opALUI+aluIndex[op], rd, ra, 0, imm))
}

// MovZ emits rd = imm16 << (hw*16).
func (e *Emitter) MovZ(rd isa.Reg, imm16 uint16, hw int) {
	e.w(opMOVZ<<24 | uint32(rd&0xf)<<20 | uint32(hw&3)<<18 | uint32(imm16))
}

// MovK emits rd = rd with hw-th 16-bit field replaced by imm16.
func (e *Emitter) MovK(rd isa.Reg, imm16 uint16, hw int) {
	e.w(opMOVK<<24 | uint32(rd&0xf)<<20 | uint32(hw&3)<<18 | uint32(imm16))
}

// CB emits a compare-and-branch with a zero offset and returns the offset
// of the instruction word for later patching with PatchCB.
func (e *Emitter) CB(cc isa.Cond, ra, rb isa.Reg) int {
	at := e.Len()
	e.w(enc(opCB|uint32(cc), 0, ra, rb, 0))
	return at
}

// BF emits a branch-on-flags-word and returns the patch offset.
func (e *Emitter) BF(cc isa.Cond, ra isa.Reg) int {
	at := e.Len()
	e.w(enc(opBF|uint32(cc&7), 0, ra, 0, 0))
	return at
}

// B emits an unconditional branch and returns the patch offset.
func (e *Emitter) B() int {
	at := e.Len()
	e.w(opB << 24)
	return at
}

// BL emits a branch-and-link and returns the patch offset.
func (e *Emitter) BL() int {
	at := e.Len()
	e.w(opBL << 24)
	return at
}

// BR emits an indirect branch through ra (RET when ra is LR).
func (e *Emitter) BR(ra isa.Reg) { e.w(enc(opBR, 0, ra, 0, 0)) }

// Load emits rd = mem[ra+simm12] with the given size and extension.
func (e *Emitter) Load(size uint8, signExt bool, rd, ra isa.Reg, imm int32) {
	op := uint32(opLOAD)
	switch size {
	case 2:
		op++
	case 4:
		op += 2
	case 8:
		op += 3
	}
	if signExt && size < 8 {
		op = opLOAD + 4 + (op - opLOAD)
	}
	e.w(enc(op, rd, ra, 0, imm))
}

// Store emits mem[ra+simm12] = rb.
func (e *Emitter) Store(size uint8, rb, ra isa.Reg, imm int32) {
	op := uint32(opSTORE)
	switch size {
	case 2:
		op++
	case 4:
		op += 2
	case 8:
		op += 3
	}
	e.w(enc(op, 0, ra, rb, imm))
}

// FALU emits fd = fa op fb.
func (e *Emitter) FALU(op isa.Op, fd, fa, fb isa.Reg) {
	var off uint32
	switch op {
	case isa.FSub:
		off = 1
	case isa.FMul:
		off = 2
	case isa.FDiv:
		off = 3
	}
	e.w(enc(opFALU+off, isa.Reg(fd.FPIndex()), isa.Reg(fa.FPIndex()), isa.Reg(fb.FPIndex()), 0))
}

// FMov emits fd = fa.
func (e *Emitter) FMov(fd, fa isa.Reg) {
	e.w(enc(opFMOV, isa.Reg(fd.FPIndex()), isa.Reg(fa.FPIndex()), 0, 0))
}

// FCvtIF emits fd = float(ra).
func (e *Emitter) FCvtIF(fd, ra isa.Reg) {
	e.w(enc(opFCVIF, isa.Reg(fd.FPIndex()), ra, 0, 0))
}

// FCvtFI emits rd = int(trunc fa).
func (e *Emitter) FCvtFI(rd, fa isa.Reg) {
	e.w(enc(opFCVFI, rd, isa.Reg(fa.FPIndex()), 0, 0))
}

// FMovToFP emits fd = rawbits(ra).
func (e *Emitter) FMovToFP(fd, ra isa.Reg) {
	e.w(enc(opFMVTF, isa.Reg(fd.FPIndex()), ra, 0, 0))
}

// FMovFromFP emits rd = rawbits(fa).
func (e *Emitter) FMovFromFP(rd, fa isa.Reg) {
	e.w(enc(opFMVFF, rd, isa.Reg(fa.FPIndex()), 0, 0))
}

// FLoad emits fd = mem8[ra+simm12].
func (e *Emitter) FLoad(fd, ra isa.Reg, imm int32) {
	e.w(enc(opFLDR, isa.Reg(fd.FPIndex()), ra, 0, imm))
}

// FStore emits mem8[ra+simm12] = fb.
func (e *Emitter) FStore(fb, ra isa.Reg, imm int32) {
	e.w(enc(opFSTR, 0, ra, isa.Reg(fb.FPIndex()), imm))
}

// FCmp emits rd = flags(fa ? fb).
func (e *Emitter) FCmp(rd, fa, fb isa.Reg) {
	e.w(enc(opFCMP, rd, isa.Reg(fa.FPIndex()), isa.Reg(fb.FPIndex()), 0))
}

// PatchCB patches the 12-bit scaled offset of a CB/BF instruction at
// offset at to reach rel bytes from the instruction. It panics when the
// branch is out of the ±8KB range, which is an assembler layout bug.
func PatchCB(code []byte, at int, rel int32) {
	if rel&3 != 0 || rel < -(1<<13) || rel >= 1<<13 {
		panic("risc: conditional branch out of range")
	}
	w := binary.LittleEndian.Uint32(code[at:])
	w = w&^uint32(0xfff) | uint32(rel>>2)&0xfff
	binary.LittleEndian.PutUint32(code[at:], w)
}

// PatchB patches the 24-bit scaled offset of a B/BL instruction.
func PatchB(code []byte, at int, rel int32) {
	if rel&3 != 0 || rel < -(1<<25) || rel >= 1<<25 {
		panic("risc: branch out of range")
	}
	w := binary.LittleEndian.Uint32(code[at:])
	w = w&^uint32(0xffffff) | uint32(rel>>2)&0xffffff
	binary.LittleEndian.PutUint32(code[at:], w)
}

// ---- Decoder ----------------------------------------------------------------

// Decoder decodes the RISC ISA.
type Decoder struct{}

var _ isa.Decoder = Decoder{}

// Name implements isa.Decoder. Reports call this ISA "arm", matching the
// paper's terminology.
func (Decoder) Name() string { return "arm" }

// MaxInstLen implements isa.Decoder.
func (Decoder) MaxInstLen() int { return InstLen }

// MinInstLen implements isa.Decoder.
func (Decoder) MinInstLen() int { return InstLen }

// DivZero implements isa.Decoder: division by zero yields zero silently.
func (Decoder) DivZero() isa.DivZeroPolicy { return isa.DivZeroZero }

func sext12(v uint32) int64 {
	return int64(int32(v<<20) >> 20)
}

func sext24(v uint32) int64 {
	return int64(int32(v<<8) >> 8)
}

func fpReg(n uint32) (isa.Reg, bool) {
	if n >= isa.NumFPRegs {
		return isa.RegNone, false
	}
	return isa.F0 + isa.Reg(n), true
}

// Decode implements isa.Decoder.
func (Decoder) Decode(buf []byte, pc uint64, in *isa.Inst) error {
	in.Reset()
	if len(buf) < InstLen {
		return isa.ErrTruncated
	}
	w := binary.LittleEndian.Uint32(buf)
	op := w >> 24
	rd := isa.Reg(w >> 20 & 0xf)
	ra := isa.Reg(w >> 16 & 0xf)
	rb := isa.Reg(w >> 12 & 0xf)
	imm12 := sext12(w & 0xfff)
	in.Len = InstLen

	switch {
	case op == opNOP:
		in.Add(isa.Uop{Op: isa.Nop, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil
	case op == opHALT:
		in.Add(isa.Uop{Op: isa.Halt, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil
	case op == opSYSC:
		in.Add(isa.Uop{Op: isa.Syscall, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		return nil

	case op >= opALU3 && op < opALU3+uint32(len(aluOps)):
		in.Add(isa.Uop{Op: aluOps[op-opALU3], Dst: rd, Src1: ra, Src2: rb})
		return nil
	case op == opMOVR:
		in.Add(isa.Uop{Op: isa.Mov, Dst: rd, Src1: ra, Src2: ra})
		return nil

	case op == opMOVZ:
		hw := w >> 18 & 3
		in.Add(isa.Uop{Op: isa.Mov, Dst: rd, Src1: isa.RegNone, Src2: isa.RegNone,
			Imm: int64(uint64(w&0xffff) << (16 * hw)), UsesImm: true})
		return nil
	case op == opMOVK:
		hw := w >> 18 & 3
		// rd = (rd &^ mask) | field. Expressed as an And+Or pair would
		// need two uops; instead a dedicated fused form: rd = ra&^mask
		// | field with ra = rd keeps it one uop via And/Or cracking.
		mask := int64(^(uint64(0xffff) << (16 * hw)))
		field := int64(uint64(w&0xffff) << (16 * hw))
		in.Add(isa.Uop{Op: isa.And, Dst: rd, Src1: rd, Src2: isa.RegNone, Imm: mask, UsesImm: true})
		in.Add(isa.Uop{Op: isa.Or, Dst: rd, Src1: rd, Src2: isa.RegNone, Imm: field, UsesImm: true})
		return nil

	case op >= opALUI && op < opALUI+uint32(len(aluOps)):
		in.Add(isa.Uop{Op: aluOps[op-opALUI], Dst: rd, Src1: ra, Src2: isa.RegNone,
			Imm: imm12, UsesImm: true})
		return nil

	case op >= opCB && op < opCB+uint32(isa.NumConds):
		cc := isa.Cond(op - opCB)
		in.Add(isa.Uop{Op: isa.BrCmp, Dst: isa.RegNone, Src1: ra, Src2: rb, Cond: cc})
		in.Branch = isa.BranchInfo{IsBranch: true, IsCond: cc != isa.CondAlways,
			Target: pc + uint64(sext12(w&0xfff)<<2)}
		return nil

	case op >= opBF && op < opBF+8:
		cc := isa.Cond(op - opBF)
		in.Add(isa.Uop{Op: isa.BrFlags, Dst: isa.RegNone, Src1: ra, Src2: isa.RegNone, Cond: cc})
		in.Branch = isa.BranchInfo{IsBranch: true, IsCond: cc != isa.CondAlways,
			Target: pc + uint64(sext12(w&0xfff)<<2)}
		return nil

	case op == opB:
		in.Add(isa.Uop{Op: isa.Jmp, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		in.Branch = isa.BranchInfo{IsBranch: true, Target: pc + uint64(sext24(w&0xffffff)<<2)}
		return nil
	case op == opBL:
		// BL is a single uop: write the return address to LR and jump.
		in.Add(isa.Uop{Op: isa.Call, Dst: isa.LR, Src1: isa.RegNone, Src2: isa.RegNone,
			Imm: int64(pc + InstLen), UsesImm: true})
		in.Branch = isa.BranchInfo{IsBranch: true, IsCall: true,
			Target: pc + uint64(sext24(w&0xffffff)<<2)}
		return nil
	case op == opBR:
		if ra == isa.LR {
			in.Add(isa.Uop{Op: isa.Ret, Dst: isa.RegNone, Src1: ra, Src2: isa.RegNone})
			in.Branch = isa.BranchInfo{IsBranch: true, IsRet: true, IsIndirect: true}
		} else {
			in.Add(isa.Uop{Op: isa.JmpReg, Dst: isa.RegNone, Src1: ra, Src2: isa.RegNone})
			in.Branch = isa.BranchInfo{IsBranch: true, IsIndirect: true}
		}
		return nil

	case op >= opLOAD && op < opLOAD+4:
		in.Add(isa.Uop{Op: isa.Load, Dst: rd, Src1: ra, Src2: isa.RegNone,
			Imm: imm12, Size: loadSizes[op-opLOAD]})
		return nil
	case op >= opLOAD+4 && op < opLOAD+7:
		in.Add(isa.Uop{Op: isa.Load, Dst: rd, Src1: ra, Src2: isa.RegNone,
			Imm: imm12, Size: loadSizes[op-opLOAD-4], SignExt: true})
		return nil
	case op >= opSTORE && op < opSTORE+4:
		in.Add(isa.Uop{Op: isa.Store, Dst: isa.RegNone, Src1: ra, Src2: rb,
			Imm: imm12, Size: loadSizes[op-opSTORE]})
		return nil

	case op >= opFALU && op <= opFMVFF:
		return decodeFP(op, rd, ra, rb, imm12, in)
	}
	return isa.ErrIllegal
}

func decodeFP(op uint32, rd, ra, rb isa.Reg, imm12 int64, in *isa.Inst) error {
	switch op {
	case opFALU, opFALU + 1, opFALU + 2, opFALU + 3:
		fd, ok1 := fpReg(uint32(rd))
		fa, ok2 := fpReg(uint32(ra))
		fb, ok3 := fpReg(uint32(rb))
		if !ok1 || !ok2 || !ok3 {
			return isa.ErrIllegal
		}
		fop := [...]isa.Op{isa.FAdd, isa.FSub, isa.FMul, isa.FDiv}[op-opFALU]
		in.Add(isa.Uop{Op: fop, Dst: fd, Src1: fa, Src2: fb})
		return nil
	case opFMOV:
		fd, ok1 := fpReg(uint32(rd))
		fa, ok2 := fpReg(uint32(ra))
		if !ok1 || !ok2 {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FMov, Dst: fd, Src1: fa, Src2: fa})
		return nil
	case opFCVIF:
		fd, ok := fpReg(uint32(rd))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FCvtIF, Dst: fd, Src1: ra, Src2: isa.RegNone})
		return nil
	case opFCVFI:
		fa, ok := fpReg(uint32(ra))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FCvtFI, Dst: rd, Src1: fa, Src2: isa.RegNone})
		return nil
	case opFMVTF:
		fd, ok := fpReg(uint32(rd))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FMovToFP, Dst: fd, Src1: ra, Src2: isa.RegNone})
		return nil
	case opFMVFF:
		fa, ok := fpReg(uint32(ra))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FMovFromFP, Dst: rd, Src1: fa, Src2: isa.RegNone})
		return nil
	case opFLDR:
		fd, ok := fpReg(uint32(rd))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FLoad, Dst: fd, Src1: ra, Src2: isa.RegNone, Imm: imm12, Size: 8})
		return nil
	case opFSTR:
		fb, ok := fpReg(uint32(rb))
		if !ok {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FStore, Dst: isa.RegNone, Src1: ra, Src2: fb, Imm: imm12, Size: 8})
		return nil
	case opFCMP:
		fa, ok1 := fpReg(uint32(ra))
		fb, ok2 := fpReg(uint32(rb))
		if !ok1 || !ok2 {
			return isa.ErrIllegal
		}
		in.Add(isa.Uop{Op: isa.FCmp, Dst: rd, Src1: fa, Src2: fb})
		return nil
	}
	return isa.ErrIllegal
}
