package risc

import (
	"fmt"

	"repro/internal/isa"
)

// Disasm decodes and formats the instruction word at pc, returning the
// rendered text and the instruction length (always 4 for decodable
// words; undecodable words render as ".word" with length 4, keeping the
// fixed-grid walk of a RISC disassembler).
func Disasm(buf []byte, pc uint64) (string, int) {
	var in isa.Inst
	if err := (Decoder{}).Decode(buf, pc, &in); err != nil {
		if len(buf) < InstLen {
			return ".end", 0
		}
		w := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
		return fmt.Sprintf(".word 0x%08x", w), InstLen
	}
	return render(&in), InstLen
}

func render(in *isa.Inst) string {
	b := in.Branch
	u := in.Uops[0]
	switch {
	case b.IsCall:
		return fmt.Sprintf("bl 0x%x", b.Target)
	case b.IsRet:
		return "ret"
	case b.IsBranch && b.IsIndirect:
		return fmt.Sprintf("br %s", u.Src1)
	case b.IsBranch && u.Op == isa.BrCmp:
		return fmt.Sprintf("cb%s %s, %s, 0x%x", u.Cond, u.Src1, u.Src2, b.Target)
	case b.IsBranch && u.Op == isa.BrFlags:
		return fmt.Sprintf("bf%s %s, 0x%x", u.Cond, u.Src1, b.Target)
	case b.IsBranch:
		return fmt.Sprintf("b 0x%x", b.Target)
	}
	// MOVK cracks into an And/Or pair over the same register.
	if in.NUops == 2 && in.Uops[0].Op == isa.And && in.Uops[1].Op == isa.Or {
		field := uint64(in.Uops[1].Imm)
		hw := 0
		for field > 0xffff {
			field >>= 16
			hw++
		}
		return fmt.Sprintf("movk %s, #0x%x, lsl #%d", u.Dst, field, hw*16)
	}
	switch u.Op {
	case isa.Nop:
		return "nop"
	case isa.Halt:
		return "hlt"
	case isa.Syscall:
		return "svc #0"
	case isa.Load:
		return fmt.Sprintf("ldr%s %s, [%s, #%d]", sizeSuffix(u.Size, u.SignExt), u.Dst, u.Src1, u.Imm)
	case isa.FLoad:
		return fmt.Sprintf("fldr %s, [%s, #%d]", u.Dst, u.Src1, u.Imm)
	case isa.Store:
		return fmt.Sprintf("str%s %s, [%s, #%d]", sizeSuffix(u.Size, false), u.Src2, u.Src1, u.Imm)
	case isa.FStore:
		return fmt.Sprintf("fstr %s, [%s, #%d]", u.Src2, u.Src1, u.Imm)
	case isa.Mov:
		if u.UsesImm {
			return fmt.Sprintf("movz %s, #0x%x", u.Dst, uint64(u.Imm))
		}
		return fmt.Sprintf("mov %s, %s", u.Dst, u.Src1)
	case isa.FCmp:
		return fmt.Sprintf("fcmp %s, %s, %s", u.Dst, u.Src1, u.Src2)
	}
	if u.UsesImm {
		return fmt.Sprintf("%s %s, %s, #%d", u.Op, u.Dst, u.Src1, u.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", u.Op, u.Dst, u.Src1, u.Src2)
}

func sizeSuffix(size uint8, signExt bool) string {
	s := map[uint8]string{1: "b", 2: "h", 4: "w", 8: ""}[size]
	if signExt {
		return "s" + s
	}
	return s
}
