package risc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestDisasmForms(t *testing.T) {
	var e Emitter
	check := func(want string) {
		t.Helper()
		got, n := Disasm(e.Code, 0x1000)
		if n != InstLen {
			t.Fatalf("%q: length %d", want, n)
		}
		if got != want {
			t.Fatalf("disasm = %q, want %q", got, want)
		}
		e = Emitter{}
	}
	e.Nop()
	check("nop")
	e.ALU3(isa.Add, isa.R1, isa.R2, isa.R3)
	check("add r1, r2, r3")
	e.ALUI(isa.Xor, isa.R4, isa.R5, -7)
	check("xor r4, r5, #-7")
	e.MovR(isa.R1, isa.R2)
	check("mov r1, r2")
	e.MovZ(isa.R3, 0xbeef, 0)
	check("movz r3, #0xbeef")
	e.MovK(isa.R3, 0x1234, 1)
	check("movk r3, #0x1234, lsl #16")
	e.Load(2, true, isa.R2, isa.R3, 12)
	check("ldrsh r2, [r3, #12]")
	e.Store(8, isa.R6, isa.SP, -16)
	check("str r6, [sp, #-16]")
	e.BR(isa.LR)
	check("ret")
	e.BR(isa.R4)
	check("br r4")
	e.Syscall()
	check("svc #0")
	e.FALU(isa.FDiv, isa.F1, isa.F2, isa.F3)
	check("fdiv f1, f2, f3")
	e.FLoad(isa.F0, isa.R1, 8)
	check("fldr f0, [r1, #8]")
	e.FCmp(isa.R2, isa.F0, isa.F1)
	check("fcmp r2, f0, f1")

	at := e.B()
	PatchB(e.Code, at, 0x40)
	check("b 0x1040")
	at = e.BL()
	PatchB(e.Code, at, -0x10)
	check("bl 0xff0")
	at = e.CB(isa.CondLT, isa.R1, isa.R2)
	PatchCB(e.Code, at, 8)
	check("cblt r1, r2, 0x1008")
	at = e.BF(isa.CondEQ, isa.R9)
	PatchCB(e.Code, at, -4)
	check("bfeq r9, 0xffc")
}

func TestDisasmIllegalWord(t *testing.T) {
	got, n := Disasm([]byte{0, 0, 0, 0xff}, 0)
	if n != InstLen || !strings.HasPrefix(got, ".word") {
		t.Fatalf("%q, %d", got, n)
	}
	got, n = Disasm([]byte{1, 2}, 0)
	if n != 0 || got != ".end" {
		t.Fatalf("%q, %d", got, n)
	}
}

// Property: disassembly of arbitrary words never panics and always
// renders something non-empty.
func TestPropDisasmTotal(t *testing.T) {
	f := func(w uint32) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
		s, n := Disasm(buf, 0x2000)
		return n == InstLen && s != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
