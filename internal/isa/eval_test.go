package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalIntBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, ^uint64(0)},
		{And, 0xff, 0x0f, 0x0f},
		{Or, 0xf0, 0x0f, 0xff},
		{Xor, 0xff, 0x0f, 0xf0},
		{Shl, 1, 4, 16},
		{Shl, 1, 68, 16}, // shift amount masked to 6 bits
		{Shr, 0x8000000000000000, 63, 1},
		{Sar, 0x8000000000000000, 63, ^uint64(0)},
		{Mul, 7, 6, 42},
		{Div, 42, 5, 8},
		{Div, uint64(0xFFFFFFFFFFFFFFF6), 5, uint64(0xFFFFFFFFFFFFFFFE)}, // -10/5 = -2
		{Rem, 43, 5, 3},
		{Mov, 99, 123, 123},
	}
	for _, c := range cases {
		got := EvalInt(c.op, c.a, c.b, DivZeroTrap)
		if got.Val != c.want || got.DivZero {
			t.Errorf("EvalInt(%v, %d, %d) = %+v, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalIntDivZeroPolicies(t *testing.T) {
	if r := EvalInt(Div, 5, 0, DivZeroTrap); !r.DivZero {
		t.Error("trap policy did not trap on /0")
	}
	if r := EvalInt(Div, 5, 0, DivZeroZero); r.DivZero || r.Val != 0 {
		t.Errorf("zero policy = %+v, want Val 0", r)
	}
	if r := EvalInt(Rem, 5, 0, DivZeroZero); r.DivZero || r.Val != 5 {
		t.Errorf("rem zero policy = %+v, want Val 5 (ARM: a)", r)
	}
	// Overflowing INT64_MIN / -1.
	minI := uint64(1) << 63
	if r := EvalInt(Div, minI, ^uint64(0), DivZeroTrap); !r.DivZero {
		t.Error("trap policy did not trap on INT64_MIN/-1")
	}
	if r := EvalInt(Div, minI, ^uint64(0), DivZeroZero); r.Val != minI {
		t.Errorf("zero policy INT64_MIN/-1 = %#x, want wrap to %#x", r.Val, minI)
	}
	if r := EvalInt(Rem, minI, ^uint64(0), DivZeroZero); r.Val != 0 {
		t.Errorf("rem INT64_MIN%%-1 = %d, want 0", r.Val)
	}
}

func TestCmpFlagsAndConds(t *testing.T) {
	cases := []struct {
		a, b uint64
		hold []Cond
		not  []Cond
	}{
		{5, 5, []Cond{CondEQ, CondGE, CondLE, CondAE, CondBE}, []Cond{CondNE, CondLT, CondGT, CondB, CondA}},
		{3, 5, []Cond{CondNE, CondLT, CondLE, CondB, CondBE}, []Cond{CondEQ, CondGE, CondGT, CondAE, CondA}},
		{5, 3, []Cond{CondNE, CondGT, CondGE, CondA, CondAE}, []Cond{CondEQ, CondLT, CondLE, CondB, CondBE}},
		// Signed vs unsigned disagreement: -1 vs 1.
		{^uint64(0), 1, []Cond{CondNE, CondLT, CondLE, CondA, CondAE}, []Cond{CondEQ, CondGT, CondGE, CondB, CondBE}},
		// Overflow case: INT64_MIN vs 1 (signed <, but subtract overflows).
		{1 << 63, 1, []Cond{CondLT, CondNE}, []Cond{CondGE, CondEQ}},
	}
	for _, c := range cases {
		f := CmpFlags(c.a, c.b)
		for _, cc := range c.hold {
			if !EvalCond(cc, f) {
				t.Errorf("cmp(%#x,%#x): cond %v should hold", c.a, c.b, cc)
			}
		}
		for _, cc := range c.not {
			if EvalCond(cc, f) {
				t.Errorf("cmp(%#x,%#x): cond %v should not hold", c.a, c.b, cc)
			}
		}
	}
}

// Property: EvalCond on CmpFlags agrees with direct integer comparison for
// every condition code and random operands.
func TestPropCmpFlagsAgree(t *testing.T) {
	f := func(a, b uint64) bool {
		fl := CmpFlags(a, b)
		sa, sb := int64(a), int64(b)
		checks := []struct {
			c    Cond
			want bool
		}{
			{CondEQ, a == b}, {CondNE, a != b},
			{CondLT, sa < sb}, {CondGE, sa >= sb},
			{CondLE, sa <= sb}, {CondGT, sa > sb},
			{CondB, a < b}, {CondAE, a >= b},
			{CondBE, a <= b}, {CondA, a > b},
			{CondAlways, true},
		}
		for _, ch := range checks {
			if EvalCond(ch.c, fl) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFCmpFlags(t *testing.T) {
	if f := FCmpFlags(1, 1); !EvalCond(CondEQ, f) {
		t.Error("1 == 1 failed")
	}
	if f := FCmpFlags(1, 2); !EvalCond(CondB, f) || !EvalCond(CondLT, f) {
		t.Error("1 < 2 failed")
	}
	if f := FCmpFlags(2, 1); !EvalCond(CondA, f) {
		t.Error("2 > 1 failed")
	}
	if f := FCmpFlags(math.NaN(), 1); EvalCond(CondEQ, f) || !EvalCond(CondB, f) {
		t.Error("NaN compare not unordered-below")
	}
}

func TestEvalFP(t *testing.T) {
	if EvalFP(FAdd, 1.5, 2.25) != 3.75 {
		t.Error("fadd")
	}
	if EvalFP(FSub, 1.5, 2.25) != -0.75 {
		t.Error("fsub")
	}
	if EvalFP(FMul, 3, 4) != 12 {
		t.Error("fmul")
	}
	if EvalFP(FDiv, 1, 4) != 0.25 {
		t.Error("fdiv")
	}
	if !math.IsInf(EvalFP(FDiv, 1, 0), 1) {
		t.Error("fdiv by zero should be +Inf")
	}
	if EvalFP(FMov, 7.5, 0) != 7.5 {
		t.Error("fmov")
	}
}

func TestExtendLoad(t *testing.T) {
	cases := []struct {
		v    uint64
		size uint8
		sx   bool
		want uint64
	}{
		{0xff, 1, false, 0xff},
		{0xff, 1, true, ^uint64(0)},
		{0x8000, 2, false, 0x8000},
		{0x8000, 2, true, 0xffffffffffff8000},
		{0x80000000, 4, false, 0x80000000},
		{0x80000000, 4, true, 0xffffffff80000000},
		{0xdeadbeefcafef00d, 8, false, 0xdeadbeefcafef00d},
		{0x1234567890, 4, false, 0x34567890},
	}
	for _, c := range cases {
		if got := ExtendLoad(c.v, c.size, c.sx); got != c.want {
			t.Errorf("ExtendLoad(%#x,%d,%v) = %#x, want %#x", c.v, c.size, c.sx, got, c.want)
		}
	}
}

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		R0: "r0", R12: "r12", SP: "sp", LR: "lr", R15: "r15",
		Flags: "flags", T0: "t0", T1: "t1", F0: "f0", F7: "f7", RegNone: "-",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(r), r.String(), want)
		}
	}
	if !F3.IsFP() || F3.IsInt() {
		t.Error("F3 classification wrong")
	}
	if !SP.IsInt() || SP.IsFP() {
		t.Error("SP classification wrong")
	}
	if F2.FPIndex() != 2 {
		t.Error("FPIndex wrong")
	}
	if RegNone.Valid() {
		t.Error("RegNone should be invalid")
	}
}

func TestUopPredicates(t *testing.T) {
	ld := Uop{Op: Load, Dst: R1, Src1: R2, Size: 8}
	st := Uop{Op: Store, Dst: RegNone, Src1: R2, Src2: R3, Size: 4}
	br := Uop{Op: BrCmp, Dst: RegNone, Src1: R1, Src2: R2, Cond: CondEQ}
	fa := Uop{Op: FAdd, Dst: F0, Src1: F1, Src2: F2}
	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() {
		t.Error("load predicates")
	}
	if !st.IsMem() || st.IsLoad() || !st.IsStore() {
		t.Error("store predicates")
	}
	if !br.IsBranch() || br.IsMem() {
		t.Error("branch predicates")
	}
	if !fa.IsFPU() {
		t.Error("fp predicates")
	}
	if st.HasDst() || !ld.HasDst() {
		t.Error("HasDst")
	}
}

func TestOpAndCondStrings(t *testing.T) {
	if Add.String() != "add" || Syscall.String() != "syscall" {
		t.Error("op names")
	}
	if CondEQ.String() != "eq" || CondAlways.String() != "al" {
		t.Error("cond names")
	}
	if Op(200).String() == "" || Cond(200).String() == "" {
		t.Error("out-of-range names should not be empty")
	}
}
