// Package isa defines the micro-operation vocabulary shared by the two
// synthetic instruction sets of this repository and by both simulator
// back-ends.
//
// The repository models two ISAs in the spirit of the paper's x86 vs ARM
// comparison:
//
//   - a CISC, x86-flavoured ISA (package isa/cisc): variable-length
//     encoding, two-operand ALU instructions, a renamed FLAGS register
//     written by CMP and read by conditional jumps, and stack-based
//     CALL/RET;
//   - a RISC, ARM-flavoured ISA (package isa/risc): fixed 4-byte
//     encoding, three-operand ALU instructions, fused compare-and-branch,
//     and link-register BL/RET.
//
// Both decoders crack macro-instructions into the micro-ops defined here,
// exactly as MARSS and Gem5 crack x86/ARM into their internal uop formats.
// The functional semantics of every ALU micro-op are defined once, in
// Eval, so the two simulators implement the same architecture while
// differing microarchitecturally.
package isa

import "fmt"

// Reg names an architectural register in a unified namespace:
// integer registers 0–15, the FLAGS pseudo-register (CISC only), two
// microcode temporaries used by cracked instruction sequences, and
// floating-point registers F0–F7.
type Reg uint8

const (
	// R0 through R15 are the general-purpose integer registers.
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13 // stack pointer by software convention (SP)
	R14 // link register on the RISC ISA (LR)
	R15
	// Flags is the condition-flags pseudo-register of the CISC ISA. It
	// is renamed through the integer physical register file, as x86
	// FLAGS is in real out-of-order cores.
	Flags
	// T0 and T1 are microcode temporaries used by cracked sequences
	// (e.g. CISC CALL/RET/PUSH/POP). They are architecturally invisible
	// but renamed like any integer register.
	T0
	T1
)

// NumIntRegs is the size of the integer architectural register space.
const NumIntRegs = 19

// F0 through F7 are the floating-point registers, carved out of a
// disjoint range of the unified register namespace.
const (
	F0 Reg = 32 + iota
	F1
	F2
	F3
	F4
	F5
	F6
	F7
)

// NumFPRegs is the size of the FP architectural register space.
const NumFPRegs = 8

// SP and LR are conventional aliases.
const (
	SP = R13
	LR = R14
)

// RegNone marks an unused operand slot.
const RegNone Reg = 0xff

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= F0 && r < F0+NumFPRegs }

// IsInt reports whether r names an integer (or flags/temp) register.
func (r Reg) IsInt() bool { return r < NumIntRegs }

// Valid reports whether r names any architectural register.
func (r Reg) Valid() bool { return r.IsInt() || r.IsFP() }

// FPIndex returns the index of an FP register within the FP space.
func (r Reg) FPIndex() int { return int(r - F0) }

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r == Flags:
		return "flags"
	case r == T0:
		return "t0"
	case r == T1:
		return "t1"
	case r == SP:
		return "sp"
	case r == LR:
		return "lr"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", r.FPIndex())
	default:
		return fmt.Sprintf("Reg(%d)", uint8(r))
	}
}

// Op is a micro-operation opcode.
type Op uint8

const (
	// Nop does nothing.
	Nop Op = iota

	// Integer ALU operations: Dst = Src1 op Src2 (or Imm when UsesImm).
	Add
	Sub
	And
	Or
	Xor
	Shl
	Shr // logical right shift
	Sar // arithmetic right shift
	Mul
	Div // signed divide; see Eval for divide-by-zero semantics
	Rem // signed remainder

	// Mov copies Src1 (or Imm) to Dst.
	Mov

	// Cmp computes Src1 − Src2 (or Imm) and writes the condition flags
	// word to Dst (the Flags register on the CISC ISA).
	Cmp

	// Load reads Size bytes at [Src1 + Imm] into Dst, sign- or
	// zero-extending per SignExt.
	Load
	// Store writes the low Size bytes of Src2 to [Src1 + Imm].
	Store

	// Jmp is an unconditional direct jump (target carried by the
	// macro-instruction).
	Jmp
	// JmpReg is an indirect jump to the address in Src1.
	JmpReg
	// BrFlags is a conditional direct branch that evaluates Cond
	// against the flags word in Src1 (CISC Jcc).
	BrFlags
	// BrCmp is a fused compare-and-branch on Src1 vs Src2 (RISC CBcc).
	BrCmp
	// Call is a direct call that writes the return address to Dst
	// (the link register on RISC; a microcode temp on CISC, where the
	// cracked sequence stores it to the stack).
	Call
	// Ret is an indirect jump to Src1 that is RAS-predicted.
	Ret

	// Floating-point ALU operations on FP registers.
	FAdd
	FSub
	FMul
	FDiv
	// FMov copies an FP register.
	FMov
	// FCvtIF converts the integer in Src1 to floating point in Dst.
	FCvtIF
	// FCvtFI converts the FP value in Src1 to a (truncated) integer in
	// Dst.
	FCvtFI
	// FMovToFP moves raw 64-bit integer bits from Src1 into FP Dst.
	FMovToFP
	// FMovFromFP moves raw FP bits from Src1 into integer Dst.
	FMovFromFP
	// FCmp compares FP Src1 and Src2 and writes a flags word to Dst.
	FCmp
	// FLoad and FStore move 8-byte FP values between memory and FP regs.
	FLoad
	FStore

	// Syscall traps to the kernel at commit.
	Syscall
	// Halt stops the simulated machine (normal program exit path is the
	// exit syscall; Halt is the ultimate fallback).
	Halt

	numOps
)

// NumOps is the number of defined micro-op opcodes; simulators use it to
// detect corrupted issue-queue payloads.
const NumOps = int(numOps)

var opNames = [...]string{
	Nop: "nop", Add: "add", Sub: "sub", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar", Mul: "mul", Div: "div", Rem: "rem",
	Mov: "mov", Cmp: "cmp", Load: "load", Store: "store",
	Jmp: "jmp", JmpReg: "jmpreg", BrFlags: "brflags", BrCmp: "brcmp",
	Call: "call", Ret: "ret",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FMov: "fmov",
	FCvtIF: "fcvtif", FCvtFI: "fcvtfi", FMovToFP: "fmovtofp", FMovFromFP: "fmovfromfp",
	FCmp: "fcmp", FLoad: "fload", FStore: "fstore",
	Syscall: "syscall", Halt: "halt",
}

// String returns the mnemonic of the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Cond is a branch condition code.
type Cond uint8

const (
	// CondAlways is used for unconditional control flow.
	CondAlways Cond = iota
	CondEQ
	CondNE
	CondLT // signed <
	CondGE // signed >=
	CondLE // signed <=
	CondGT // signed >
	CondB  // unsigned <
	CondAE // unsigned >=
	CondBE // unsigned <=
	CondA  // unsigned >
	// NumConds is the number of defined condition codes.
	NumConds
)

var condNames = [...]string{
	CondAlways: "al", CondEQ: "eq", CondNE: "ne", CondLT: "lt", CondGE: "ge",
	CondLE: "le", CondGT: "gt", CondB: "b", CondAE: "ae", CondBE: "be", CondA: "a",
}

// String returns the condition mnemonic.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", uint8(c))
}

// Flag bits of the flags word written by Cmp/FCmp.
const (
	FlagZ uint64 = 1 << 0 // zero
	FlagC uint64 = 1 << 1 // carry / unsigned borrow
	FlagN uint64 = 1 << 2 // negative
	FlagV uint64 = 1 << 3 // signed overflow
)

// Uop is one micro-operation. Macro-instructions decode into one or more
// Uops; the pipeline renames, issues and commits Uops.
type Uop struct {
	Op      Op
	Dst     Reg
	Src1    Reg
	Src2    Reg
	Imm     int64
	Cond    Cond
	Size    uint8 // memory access size in bytes (1,2,4,8)
	SignExt bool  // sign-extend loads
	UsesImm bool  // second ALU operand is Imm rather than Src2
}

// String renders the uop for logs and debugging.
func (u Uop) String() string {
	if u.UsesImm {
		return fmt.Sprintf("%s %s, %s, #%d", u.Op, u.Dst, u.Src1, u.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", u.Op, u.Dst, u.Src1, u.Src2)
}

// HasDst reports whether the uop writes a destination register.
func (u Uop) HasDst() bool { return u.Dst != RegNone }

// IsMem reports whether the uop accesses data memory.
func (u Uop) IsMem() bool {
	return u.Op == Load || u.Op == Store || u.Op == FLoad || u.Op == FStore
}

// IsLoad reports whether the uop reads data memory.
func (u Uop) IsLoad() bool { return u.Op == Load || u.Op == FLoad }

// IsStore reports whether the uop writes data memory.
func (u Uop) IsStore() bool { return u.Op == Store || u.Op == FStore }

// IsBranch reports whether the uop can redirect control flow.
func (u Uop) IsBranch() bool {
	switch u.Op {
	case Jmp, JmpReg, BrFlags, BrCmp, Call, Ret:
		return true
	}
	return false
}

// IsFPU reports whether the uop executes on a floating-point unit.
func (u Uop) IsFPU() bool {
	switch u.Op {
	case FAdd, FSub, FMul, FDiv, FMov, FCvtIF, FCvtFI, FCmp, FMovToFP:
		return true
	}
	return false
}
