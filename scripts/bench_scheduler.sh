#!/bin/sh
# Runs the matrix-scheduler benchmarks (the bare scheduler and the
# telemetry-overhead variant), the pruning-engine benchmarks (the
# prune ablation, the checkpoint ladder, and the golden-run profiling
# overhead guard), the detail-window ablation, and the functional-tier
# turbo benchmarks (interpreter dispatch with the predecode cache
# on/off, window entries from boot vs. the fast-forward rung ladder),
# and writes the machine-readable baselines
# results/BENCH_scheduler.json, results/BENCH_prune.json,
# results/BENCH_window.json and results/BENCH_interp.json via
# scripts/benchjson.
#
# Usage: scripts/bench_scheduler.sh [count]
#   count  -count passed to `go test -bench` (default 1)
set -eu

cd "$(dirname "$0")/.."
count="${1:-1}"
mkdir -p results

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'BenchmarkMatrixScheduler' -benchtime 1x \
    -count "$count" . | tee "$out"
go run ./scripts/benchjson <"$out" >results/BENCH_scheduler.json
echo "wrote results/BENCH_scheduler.json"

go test -run '^$' \
    -bench 'BenchmarkPruneAblation|BenchmarkCheckpointLadder|BenchmarkGoldenProfileOverhead' \
    -benchtime 3x -count "$count" . | tee "$out"
go run ./scripts/benchjson <"$out" >results/BENCH_prune.json
echo "wrote results/BENCH_prune.json"

go test -run '^$' -bench '^BenchmarkDetailWindow$' -benchtime 3x \
    -count "$count" . | tee "$out"
go run ./scripts/benchjson <"$out" >results/BENCH_window.json
echo "wrote results/BENCH_window.json"

go test -run '^$' -bench '^BenchmarkInterpDispatch$' -benchtime 200x \
    -count "$count" . | tee "$out"
go test -run '^$' -bench '^BenchmarkWindowEntryLadder$' -benchtime 3x \
    -count "$count" . | tee -a "$out"
go run ./scripts/benchjson <"$out" >results/BENCH_interp.json
echo "wrote results/BENCH_interp.json"
