#!/bin/sh
# Runs the matrix-scheduler benchmarks (the bare scheduler and the
# telemetry-overhead variant) and writes the machine-readable baseline
# results/BENCH_scheduler.json via scripts/benchjson.
#
# Usage: scripts/bench_scheduler.sh [count]
#   count  -count passed to `go test -bench` (default 1)
set -eu

cd "$(dirname "$0")/.."
count="${1:-1}"
mkdir -p results

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -run '^$' -bench 'BenchmarkMatrixScheduler' -benchtime 1x \
    -count "$count" . | tee "$out"
go run ./scripts/benchjson <"$out" >results/BENCH_scheduler.json
echo "wrote results/BENCH_scheduler.json"
