#!/bin/sh
# CI smoke test for the telemetry layer: run one tiny campaign with
# tracing, the metrics endpoint, and the final-snapshot dump all enabled,
# then cross-check the three artifacts with scripts/smokecheck.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

tool=gefin-x86
bench=qsort
structure=rf.int
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 25 -seed 1 -logs "$tmp/logs" \
    -trace -metrics-addr 127.0.0.1:0 -snapshot-json "$tmp/snap.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap.json"
