#!/bin/sh
# CI smoke test for the telemetry layer and the pruning engine: run one
# tiny campaign with tracing, the metrics endpoint, and the
# final-snapshot dump all enabled, then a second campaign with liveness
# pruning, the checkpoint ladder, and the -prune-verify differential
# guard on top, cross-checking each run's artifacts with
# scripts/smokecheck.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

tool=gefin-x86
bench=qsort
structure=rf.int
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 25 -seed 1 -logs "$tmp/logs" \
    -trace -metrics-addr 127.0.0.1:0 -snapshot-json "$tmp/snap.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap.json"

# Pruned campaign: the L1D data array prunes heavily, -prune-verify
# simulates a sample of the pruned masks anyway and fails on any class
# disagreement, and smokecheck -prune asserts the trace still carries
# one provenance-flagged row per injection.
structure=l1d.data
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 2 -logs "$tmp/logs" \
    -prune -prune-verify 25 -checkpoint -ladder 3 \
    -trace -snapshot-json "$tmp/snap_prune.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap_prune.json" -prune
