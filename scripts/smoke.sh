#!/bin/sh
# CI smoke test for the telemetry layer and the campaign engine: run one
# tiny campaign with tracing, the metrics endpoint, and the
# final-snapshot dump all enabled, then a second campaign with liveness
# pruning, the checkpoint ladder, and the -prune-verify differential
# guard on top, then a detail-window campaign with the -window-verify
# differential guard, then a kill-and-resume round and a distributed
# coordinator/worker round with a SIGKILLed worker, and finally an
# observability round: divergence provenance plus span tracing single-
# node and distributed, with a live SSE subscription and the fleet-
# aggregated snapshot cross-checked against the per-worker snapshots,
# and finally an adaptive round: a sequentially-stopped campaign whose
# stop point must survive kill/resume and distribution byte-for-byte —
# all artifacts validated with scripts/smokecheck — and a campaign-
# service round: an always-on multi-tenant faultcampd -service daemon
# takes submissions over /v1, is SIGKILLed and restarted mid-campaign
# (the spooled queue resumes from the journal, byte-identical), and the
# one-shot compatibility mode replays the pruned and detail-window
# campaigns through the same public API.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

tool=gefin-x86
bench=qsort
structure=rf.int
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 25 -seed 1 -logs "$tmp/logs" \
    -trace -metrics-addr 127.0.0.1:0 -snapshot-json "$tmp/snap.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap.json"

# Pruned campaign: the L1D data array prunes heavily, -prune-verify
# simulates a sample of the pruned masks anyway and fails on any class
# disagreement, and smokecheck -prune asserts the trace still carries
# one provenance-flagged row per injection.
structure=l1d.data
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 2 -logs "$tmp/logs" \
    -prune -prune-verify 25 -checkpoint -ladder 3 \
    -trace -snapshot-json "$tmp/snap_prune.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap_prune.json" -prune

# Windowed campaign: detail-window execution runs each injection
# cycle-accurately only inside a window around its fault and functionally
# everywhere else; -window-verify re-simulates a sample of the windowed
# runs fully cycle-accurately from the same window entries and fails the
# campaign on any outcome-class disagreement. smokecheck -window asserts
# the fast tier actually carried work.
structure=rf.int
key="${tool}__${bench}__${structure}"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 30 -seed 4 -logs "$tmp/logs" \
    -detail-window -window-verify 10 \
    -trace -snapshot-json "$tmp/snap_window.json" \
    -progress-every 500ms

go run ./scripts/smokecheck \
    -logs "$tmp/logs" -key "$key" -snapshot "$tmp/snap_window.json" -window

# Turbo round: the same windowed campaign with the functional-tier
# optimisations at their defaults (predecoded-instruction cache plus
# the fast-forward rung ladder) against a reference run with both
# disabled (-ff-rungs=-1 -no-decode-cache). The optimisations are pure
# performance knobs: logs and traces must be byte-identical.
go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 30 -seed 4 -logs "$tmp/turbo" \
    -detail-window -trace -quiet -snapshot-json "$tmp/snap_turbo.json"

go run ./cmd/faultcamp \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 30 -seed 4 -logs "$tmp/turbo_ref" \
    -detail-window -ff-rungs=-1 -no-decode-cache \
    -trace -quiet -snapshot-json "$tmp/snap_turbo_ref.json"

cmp "$tmp/turbo/${key}.log.jsonl" "$tmp/turbo_ref/${key}.log.jsonl"
cmp "$tmp/turbo/${key}.trace.jsonl" "$tmp/turbo_ref/${key}.trace.jsonl"
go run ./scripts/smokecheck \
    -logs "$tmp/turbo" -key "$key" -snapshot "$tmp/snap_turbo.json" -window
echo "smoke: turbo windowed campaign is byte-identical to the unoptimised reference"

# Crash-and-resume: run a journaled reference campaign to completion,
# then start an identical campaign, SIGKILL it mid-flight, and resume it
# from the journal. The resumed logs and trace must be byte-identical to
# the uninterrupted reference, and smokecheck validates the journal's
# provenance (one fsync'd entry per simulated run, none for pruned ones).
# Built as a binary: kill -9 on `go run` would orphan the real campaign.
structure=rf.int
key="${tool}__${bench}__${structure}"
go build -o "$tmp/faultcamp" ./cmd/faultcamp

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 60 -seed 3 -logs "$tmp/ref" \
    -journal -trace -quiet -snapshot-json "$tmp/snap_ref.json"

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 60 -seed 3 -logs "$tmp/resumed" -workers 1 \
    -journal -trace -quiet -snapshot-json "$tmp/snap_gone.json" &
pid=$!
journal="$tmp/resumed/${key}.journal.jsonl"
i=0
while [ "$(wc -l < "$journal" 2>/dev/null || echo 0)" -lt 10 ] && [ $i -lt 600 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 60 -seed 3 -logs "$tmp/resumed" \
    -resume -trace -quiet -snapshot-json "$tmp/snap_resumed.json"

cmp "$tmp/ref/${key}.log.jsonl" "$tmp/resumed/${key}.log.jsonl"
cmp "$tmp/ref/${key}.trace.jsonl" "$tmp/resumed/${key}.trace.jsonl"

go run ./scripts/smokecheck \
    -logs "$tmp/resumed" -key "$key" -snapshot "$tmp/snap_resumed.json" \
    -journal -want-resumed
echo "smoke: resumed campaign is byte-identical to the uninterrupted reference"

# Distributed campaign: a faultcampd coordinator shards the same rf.int
# campaign over HTTP; the first worker is SIGKILLed mid-campaign so its
# leased shard expires and is requeued, and a second worker finishes the
# matrix. The merged logs and trace must be byte-identical to the
# single-node reference above, and smokecheck -journal validates the
# coordinator's exactly-once ledger against them.
go build -o "$tmp/faultcampd" ./cmd/faultcampd
go build -o "$tmp/faultworker" ./cmd/faultworker

"$tmp/faultcampd" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 60 -seed 3 -logs "$tmp/dist" \
    -shard-size 10 -lease-ttl 2s -retry-backoff 100ms \
    -addr-file "$tmp/coord.addr" \
    -journal -trace -quiet -snapshot-json "$tmp/snap_dist.json" &
dpid=$!

# The doomed worker runs alone until the coordinator has merged (and
# journaled) at least one shard — at that point it holds a lease on the
# next one — then dies without a goodbye.
"$tmp/faultworker" -addr-file "$tmp/coord.addr" -id doomed -quiet &
doomed=$!
# The coordinator creates the journal lazily on the first merged shard,
# so count through cat: a missing file reads as zero lines, not an error.
journal="$tmp/dist/${key}.journal.jsonl"
i=0
while [ "$(cat "$journal" 2>/dev/null | wc -l)" -lt 10 ] && [ $i -lt 1200 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$doomed" 2>/dev/null || true
wait "$doomed" 2>/dev/null || true

"$tmp/faultworker" -addr-file "$tmp/coord.addr" -id survivor -quiet
wait "$dpid"

cmp "$tmp/ref/${key}.log.jsonl" "$tmp/dist/${key}.log.jsonl"
cmp "$tmp/ref/${key}.trace.jsonl" "$tmp/dist/${key}.trace.jsonl"
go run ./scripts/smokecheck \
    -logs "$tmp/dist" -key "$key" -snapshot "$tmp/snap_dist.json" -journal
echo "smoke: distributed campaign merged byte-identical to the single-node reference"

# Observability round. A single-node reference campaign records
# divergence provenance and a span trace; the same campaign distributed
# over two workers must flush a byte-identical divergence file (the
# provenance is a deterministic function of the plan, not of the
# scheduling), while a live smokecheck probe subscribes to the
# coordinator's SSE /events mid-campaign and the fleet-aggregated
# snapshot is cross-checked against the per-worker final snapshots.
# Seed 42's mask population includes runs that architecturally diverge.
structure=rf.int
key="${tool}__${bench}__${structure}"

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 42 -logs "$tmp/obsref" \
    -divergence -spans -trace -quiet -snapshot-json "$tmp/snap_obsref.json"

go run ./scripts/smokecheck \
    -logs "$tmp/obsref" -key "$key" -snapshot "$tmp/snap_obsref.json" \
    -divergence -spans

go build -o "$tmp/smokecheck" ./scripts/smokecheck

"$tmp/faultcampd" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 42 -logs "$tmp/obsdist" \
    -shard-size 8 -addr-file "$tmp/obs.addr" \
    -divergence -spans -trace -quiet \
    -fleet-json "$tmp/fleet.json" -snapshot-json "$tmp/snap_obsdist.json" &
opid=$!

i=0
while [ ! -s "$tmp/obs.addr" ] && [ $i -lt 600 ]; do
    sleep 0.05
    i=$((i + 1))
done
addr="$(cat "$tmp/obs.addr")"

# The live probe subscribes before the workers start — a mid-campaign
# connect whose first frame must be a coherent aggregated snapshot,
# followed by streamed run and span frames as shards merge.
"$tmp/smokecheck" -live "$addr" -min-run-frames 5 -min-span-frames 5 &
livepid=$!

"$tmp/faultworker" -addr-file "$tmp/obs.addr" -id obs-w1 -quiet \
    -snapshot-json "$tmp/obs_w1.json" &
w1=$!
"$tmp/faultworker" -addr-file "$tmp/obs.addr" -id obs-w2 -quiet \
    -snapshot-json "$tmp/obs_w2.json" &
w2=$!
wait "$w1"
wait "$w2"
wait "$livepid"
wait "$opid"

cmp "$tmp/obsref/${key}.divergence.jsonl" "$tmp/obsdist/${key}.divergence.jsonl"
"$tmp/smokecheck" \
    -logs "$tmp/obsdist" -key "$key" -snapshot "$tmp/snap_obsdist.json" \
    -divergence -spans \
    -fleet "$tmp/fleet.json" -worker-snaps "$tmp/obs_w1.json,$tmp/obs_w2.json"
echo "smoke: observability round OK — distributed divergence provenance byte-identical, SSE live, fleet snapshot balanced"

# Adaptive round: a 25pp margin at 99% confidence decides at the first
# 25-run boundary whatever the outcomes, so this 120-mask campaign stops
# at 25 simulated runs and settles the other 95 as stopped-early
# provenance rows. A journaled reference run establishes the artifacts;
# an identical campaign is SIGKILLed mid-flight and resumed — the
# contiguous-prefix stopping rule must re-derive the identical stop
# point, logs and trace byte-for-byte; and the same campaign distributed
# through a coordinator must merge to the same bytes with the stop
# cancelling its queued shards.
structure=rf.int
key="${tool}__${bench}__${structure}"

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 120 -seed 5 -logs "$tmp/adaptref" \
    -stop-margin 0.25 -stop-check-every 25 \
    -journal -trace -quiet -snapshot-json "$tmp/snap_adapt.json"

"$tmp/smokecheck" \
    -logs "$tmp/adaptref" -key "$key" -snapshot "$tmp/snap_adapt.json" \
    -journal -adaptive

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 120 -seed 5 -logs "$tmp/adaptresumed" -workers 1 \
    -stop-margin 0.25 -stop-check-every 25 \
    -journal -trace -quiet -snapshot-json "$tmp/snap_adapt_gone.json" &
pid=$!
journal="$tmp/adaptresumed/${key}.journal.jsonl"
i=0
while [ "$(cat "$journal" 2>/dev/null | wc -l)" -lt 10 ] && [ $i -lt 600 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 120 -seed 5 -logs "$tmp/adaptresumed" \
    -stop-margin 0.25 -stop-check-every 25 \
    -resume -trace -quiet -snapshot-json "$tmp/snap_adapt_resumed.json"

cmp "$tmp/adaptref/${key}.log.jsonl" "$tmp/adaptresumed/${key}.log.jsonl"
cmp "$tmp/adaptref/${key}.trace.jsonl" "$tmp/adaptresumed/${key}.trace.jsonl"
"$tmp/smokecheck" \
    -logs "$tmp/adaptresumed" -key "$key" -snapshot "$tmp/snap_adapt_resumed.json" \
    -journal -want-resumed -adaptive
echo "smoke: resumed adaptive campaign re-derived the identical stop point"

"$tmp/faultcampd" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 120 -seed 5 -logs "$tmp/adaptdist" \
    -stop-margin 0.25 -stop-check-every 25 \
    -shard-size 10 -addr-file "$tmp/adapt.addr" \
    -journal -trace -quiet -snapshot-json "$tmp/snap_adapt_dist.json" &
apid=$!
"$tmp/faultworker" -addr-file "$tmp/adapt.addr" -id adapt-w1 -quiet
wait "$apid"

cmp "$tmp/adaptref/${key}.log.jsonl" "$tmp/adaptdist/${key}.log.jsonl"
cmp "$tmp/adaptref/${key}.trace.jsonl" "$tmp/adaptdist/${key}.trace.jsonl"
"$tmp/smokecheck" \
    -logs "$tmp/adaptdist" -key "$key" -snapshot "$tmp/snap_adapt_dist.json" \
    -journal -adaptive
echo "smoke: adaptive round OK — early stop deterministic across kill/resume and the distributed coordinator"

# Campaign-service round: an always-on faultcampd -service daemon takes
# submissions from two tenants over the /v1 API, shares one fleet
# worker, is SIGKILLed mid-campaign and restarted on the same spool —
# the spooled campaign must resume from its journal and merge
# byte-identical to the single-node reference — while the second
# tenant's campaign is cancelled mid-run and must release its work
# without leaving a result index behind.
structure=rf.int
key="${tool}__${bench}__${structure}"
go build -o "$tmp/faultctl" ./cmd/faultctl

cat > "$tmp/tenants.json" <<'EOF'
[{"name": "alice", "token": "tok-alice", "max_active": 2},
 {"name": "bob", "token": "tok-bob", "max_active": 1}]
EOF
cat > "$tmp/svc_a.json" <<EOF
{"campaigns": [{"tool": "$tool", "benchmark": "$bench", "structure": "$structure"}],
 "injections": 60, "seed": 3}
EOF
cat > "$tmp/svc_b.json" <<EOF
{"campaigns": [{"tool": "$tool", "benchmark": "$bench", "structure": "$structure"}],
 "injections": 1000, "seed": 11}
EOF

"$tmp/faultcampd" -service -logs "$tmp/svclogs" \
    -spool "$tmp/spool" -index "$tmp/svcindex" -tenants "$tmp/tenants.json" \
    -listen 127.0.0.1:0 -addr-file "$tmp/svc.addr" \
    -shard-size 10 -lease-ttl 2s -retry-backoff 100ms &
spid=$!
i=0
while [ ! -s "$tmp/svc.addr" ] && [ $i -lt 600 ]; do
    sleep 0.05
    i=$((i + 1))
done
addr="$(cat "$tmp/svc.addr")"
hostport="${addr#http://}"

# A request without (or with a bogus) token must bounce off the
# bearer-auth envelope before anything is spooled.
if "$tmp/faultctl" -addr "$addr" submit -config "$tmp/svc_a.json" 2>/dev/null; then
    echo "smoke: FAIL — tokenless submit was accepted" >&2
    exit 1
fi

idA="$("$tmp/faultctl" -addr "$addr" -token tok-alice submit \
    -config "$tmp/svc_a.json" -name parity -journal -trace)"

"$tmp/faultworker" -coordinator "$addr" -id fleet-w1 -quiet &
fwpid=$!

# SIGKILL the daemon once campaign A's journal carries at least 10
# merged runs; the fleet worker stays up and rides out the restart.
journal="$tmp/svclogs/$idA/${key}.journal.jsonl"
i=0
while [ "$(cat "$journal" 2>/dev/null | wc -l)" -lt 10 ] && [ $i -lt 1200 ]; do
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true

# Restart on the same spool and the same address (the worker's base URL
# is fixed): the non-terminal spool entry re-queues flagged resumed and
# the coordinator replays the journal.
"$tmp/faultcampd" -service -logs "$tmp/svclogs" \
    -spool "$tmp/spool" -index "$tmp/svcindex" -tenants "$tmp/tenants.json" \
    -listen "$hostport" -addr-file "$tmp/svc.addr" \
    -shard-size 10 -lease-ttl 2s -retry-backoff 100ms &
spid=$!

stateA="$("$tmp/faultctl" -addr "$addr" -token tok-alice wait "$idA")"
if [ "$stateA" != "done" ]; then
    echo "smoke: FAIL — campaign $idA finished $stateA, want done" >&2
    exit 1
fi

cmp "$tmp/ref/${key}.log.jsonl" "$tmp/svclogs/$idA/${key}.log.jsonl"
cmp "$tmp/ref/${key}.trace.jsonl" "$tmp/svclogs/$idA/${key}.trace.jsonl"
"$tmp/faultctl" -addr "$addr" -token tok-alice snapshot "$idA" > "$tmp/snap_svc_a.json"
"$tmp/smokecheck" \
    -logs "$tmp/svclogs/$idA" -key "$key" -snapshot "$tmp/snap_svc_a.json" \
    -journal -want-resumed
echo "smoke: service campaign survived the daemon SIGKILL/restart byte-identical to the reference"

# Tenant bob: a long campaign on the shared fleet, probed live over the
# service-root SSE plane mid-run, then cancelled; alice must not see it.
idB="$("$tmp/faultctl" -addr "$addr" -token tok-bob submit -config "$tmp/svc_b.json" -name doomed)"
if "$tmp/faultctl" -addr "$addr" -token tok-alice status "$idB" 2>/dev/null; then
    echo "smoke: FAIL — cross-tenant status leak for $idB" >&2
    exit 1
fi
i=0
while [ $i -lt 1200 ]; do
    set -- $("$tmp/faultctl" -addr "$addr" -token tok-bob status "$idB")
    state=$2
    done_shards=${3%%/*}
    if [ "$state" = "running" ] && [ "$done_shards" -ge 1 ]; then
        break
    fi
    sleep 0.05
    i=$((i + 1))
done
"$tmp/smokecheck" -live "$addr" -min-run-frames 3
"$tmp/faultctl" -addr "$addr" -token tok-bob cancel "$idB" > /dev/null
stateB="$("$tmp/faultctl" -addr "$addr" -token tok-bob wait "$idB")"
if [ "$stateB" != "cancelled" ]; then
    echo "smoke: FAIL — campaign $idB finished $stateB, want cancelled" >&2
    exit 1
fi

# The result repository serves alice's aggregated breakdown without
# re-reading the logs; bob's cancelled campaign must have none.
"$tmp/faultctl" -addr "$addr" -token tok-alice results "$idA" | grep -q '"runs": 60'
if "$tmp/faultctl" -addr "$addr" -token tok-bob results "$idB" 2>/dev/null; then
    echo "smoke: FAIL — cancelled campaign $idB served results" >&2
    exit 1
fi

kill "$fwpid" 2>/dev/null || true
wait "$fwpid" 2>/dev/null || true
kill "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true

"$tmp/smokecheck" -service "$idA=done,$idB=cancelled" \
    -spool "$tmp/spool" -index "$tmp/svcindex"
echo "smoke: service round OK — durable queue resumed across SIGKILL, cancel released the fleet, results indexed"

# One-shot compatibility mode: the legacy faultcampd contract now runs
# as a submission through the same /v1 API. The pruned ladder campaign
# and the detail-window campaign must merge byte-identical to their
# single-node references through that path.
structure=l1d.data
key="${tool}__${bench}__${structure}"

"$tmp/faultcamp" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 2 -logs "$tmp/svc_prune_ref" \
    -prune -checkpoint -ladder 3 -trace -quiet

"$tmp/faultcampd" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 40 -seed 2 -logs "$tmp/svc_prune" \
    -prune -checkpoint -ladder 3 \
    -shard-size 10 -addr-file "$tmp/oneshot.addr" \
    -trace -quiet -snapshot-json "$tmp/snap_svc_prune.json" &
ospid=$!
"$tmp/faultworker" -addr-file "$tmp/oneshot.addr" -id oneshot-w1 -quiet
wait "$ospid"

cmp "$tmp/svc_prune_ref/${key}.log.jsonl" "$tmp/svc_prune/${key}.log.jsonl"
cmp "$tmp/svc_prune_ref/${key}.trace.jsonl" "$tmp/svc_prune/${key}.trace.jsonl"
"$tmp/smokecheck" \
    -logs "$tmp/svc_prune" -key "$key" -snapshot "$tmp/snap_svc_prune.json" -prune

structure=rf.int
key="${tool}__${bench}__${structure}"
rm -f "$tmp/oneshot.addr"

"$tmp/faultcampd" \
    -tool "$tool" -bench "$bench" -structure "$structure" \
    -n 30 -seed 4 -logs "$tmp/svc_window" \
    -detail-window \
    -shard-size 10 -addr-file "$tmp/oneshot.addr" \
    -trace -quiet -snapshot-json "$tmp/snap_svc_window.json" &
ospid=$!
"$tmp/faultworker" -addr-file "$tmp/oneshot.addr" -id oneshot-w2 -quiet
wait "$ospid"

cmp "$tmp/turbo/${key}.log.jsonl" "$tmp/svc_window/${key}.log.jsonl"
cmp "$tmp/turbo/${key}.trace.jsonl" "$tmp/svc_window/${key}.trace.jsonl"
"$tmp/smokecheck" \
    -logs "$tmp/svc_window" -key "$key" -snapshot "$tmp/snap_svc_window.json" -window
echo "smoke: one-shot mode through the service API merged the pruned and windowed campaigns byte-identical"
