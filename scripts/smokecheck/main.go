// Command smokecheck cross-checks the three artifacts of one telemetry-
// enabled campaign — the stored logs, the final snapshot JSON, and the
// JSONL injection trace — against each other (the CI smoke job's
// assertion step):
//
//   - the snapshot JSON parses and its run totals balance,
//   - the snapshot's outcome histogram equals what the offline parser
//     computes from the stored records,
//   - the trace has exactly one row per injection, in (campaign, mask)
//     order, with classes matching the offline parser record-for-record,
//   - prune provenance is consistent: dead-pruned rows classify Masked,
//     replicated rows name a representative with the same class, and the
//     snapshot's prune counters equal the trace's flagged-row counts
//     (with -prune additionally asserting that pruning happened at all),
//   - early-stop provenance is consistent: rows the sequential stopping
//     rule cancelled are flagged in the trace, classify as the Stopped
//     pseudo-class, carry no simulation results, and match the
//     snapshot's stopped-run and stopped-cell counters (with -adaptive
//     additionally asserting the rule fired at all),
//   - with -window, the snapshot shows detail-window execution actually
//     happened: windowed runs with functional-tier entries and fast-tier
//     instructions, and internally consistent window counters,
//   - with -journal, the durable run journal carries exactly one entry
//     per simulated (non-pruned) injection, each labeled with the
//     campaign key and byte-equivalent to the stored log record, and
//     with -want-resumed the snapshot reports at least one run loaded
//     from the journal rather than re-simulated,
//   - with -divergence, the divergence-provenance JSONL (schema-version
//     aware: versionless rows from older builds parse, newer versions
//     are refused) carries one row per injection in (campaign, mask)
//     order with classes matching the offline parser, pruned/resumed
//     stubs carrying no measurements, and the derived masking-depth
//     fields recomputable from the primary ones,
//   - with -spans, the span trace parses under its version gate, forms
//     one well-parented tree per trace ID, and carries one run span per
//     simulated injection,
//   - with -fleet, the coordinator's fleet-aggregated snapshot equals
//     the merge of the per-worker snapshots named by -worker-snaps and
//     its run total matches the stored logs.
//
// A second, live mode (-live URL) probes a running coordinator's
// observability plane instead of offline artifacts: /snapshot.json and
// /metrics must serve the aggregate, and an SSE subscription to /events
// must open with a coherent "snapshot" frame and then stream at least
// -min-run-frames "run" and -min-span-frames "span" frames.
//
// Usage:
//
//	smokecheck -logs logsrepo -key gefin-x86__qsort__rf.int \
//	           -snapshot snap.json [-trace logsrepo/<key>.trace.jsonl] [-prune]
//	           [-journal [-want-resumed]] [-divergence [-divergence-table]] [-spans]
//	           [-fleet fleet.json -worker-snaps w1.json,w2.json]
//	smokecheck -live http://127.0.0.1:8400 -min-run-frames 5 -min-span-frames 5
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/svc"
	"repro/internal/telemetry"
)

func main() {
	logsDir := flag.String("logs", "", "logs repository directory")
	key := flag.String("key", "", "campaign key to check")
	snapPath := flag.String("snapshot", "", "final snapshot JSON file")
	tracePath := flag.String("trace", "", "JSONL injection trace (default <logs>/<key>.trace.jsonl)")
	wantPrune := flag.Bool("prune", false, "assert the campaign was pruned (nonzero dead or replicated rows)")
	wantAdaptive := flag.Bool("adaptive", false, "assert the sequential stopping rule fired (stopped-early rows with coherent counters)")
	wantWindow := flag.Bool("window", false, "assert the campaign ran under a detail window (windowed runs, entries, fast-tier work)")
	wantJournal := flag.Bool("journal", false, "validate the run journal against the logs and trace")
	wantResumed := flag.Bool("want-resumed", false, "assert the snapshot reports runs resumed from the journal")
	wantDivergence := flag.Bool("divergence", false, "validate the divergence-provenance JSONL against the logs and trace")
	divTable := flag.Bool("divergence-table", false, "with -divergence: print the aggregated propagation table (the EXPERIMENTS.md format)")
	wantSpans := flag.Bool("spans", false, "validate the span trace (<logs>/<key>.spans.jsonl)")
	fleetPath := flag.String("fleet", "", "fleet-aggregated snapshot JSON to check against -worker-snaps and the logs")
	workerSnaps := flag.String("worker-snaps", "", "comma-separated per-worker snapshot JSON files (with -fleet)")
	liveURL := flag.String("live", "", "probe a running coordinator's observability plane at this base URL instead of offline artifacts")
	minRunFrames := flag.Int("min-run-frames", 1, "with -live: minimum SSE run frames to require")
	minSpanFrames := flag.Int("min-span-frames", 0, "with -live: minimum SSE span frames to require")
	liveTimeout := flag.Duration("live-timeout", 2*time.Minute, "with -live: overall deadline for the probe")
	servicePairs := flag.String("service", "", "validate campaign-service durable state: comma-separated id=state pairs (with -spool and -index)")
	spoolDir := flag.String("spool", "", "with -service: the daemon's campaign spool directory")
	indexDir := flag.String("index", "", "with -service: the daemon's result index directory")
	flag.Parse()
	if *liveURL != "" {
		checkLive(*liveURL, *minRunFrames, *minSpanFrames, *liveTimeout)
		return
	}
	if *servicePairs != "" {
		checkService(*spoolDir, *indexDir, *servicePairs)
		return
	}
	if *logsDir == "" || *key == "" || *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	repo, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	res, err := repo.Load(*key)
	if err != nil {
		fatal(err)
	}
	breakdown := (core.Parser{}).ParseAll(res.Records)

	b, err := os.ReadFile(*snapPath)
	if err != nil {
		fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		fatal(fmt.Errorf("snapshot JSON does not parse: %w", err))
	}

	n := uint64(len(res.Records))
	if snap.RunsDone != n || snap.RunsStarted != n || snap.RunsQueued != n {
		fatal(fmt.Errorf("snapshot run totals %d/%d/%d queued/started/done, logs have %d records",
			snap.RunsQueued, snap.RunsStarted, snap.RunsDone, n))
	}
	var sum uint64
	for _, c := range snap.ClassCounts {
		sum += c
	}
	if sum != n {
		fatal(fmt.Errorf("snapshot classes sum to %d, want %d", sum, n))
	}
	if len(snap.ClassCounts) != len(breakdown.Counts) {
		fatal(fmt.Errorf("snapshot has %d classes, parser %d: %v vs %v",
			len(snap.ClassCounts), len(breakdown.Counts), snap.ClassCounts, breakdown.Counts))
	}
	for cls, want := range breakdown.Counts {
		if got := snap.ClassCounts[string(cls)]; got != uint64(want) {
			fatal(fmt.Errorf("snapshot class %s = %d, parser says %d", cls, got, want))
		}
	}

	path := *tracePath
	if path == "" {
		path = repo.TracePath(*key)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := fault.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) != len(res.Records) {
		fatal(fmt.Errorf("trace has %d rows, logs have %d records", len(recs), len(res.Records)))
	}
	for i, tr := range recs {
		if tr.MaskID != res.Records[i].MaskID {
			fatal(fmt.Errorf("trace row %d is mask %d, logs row is mask %d (order broken)",
				i, tr.MaskID, res.Records[i].MaskID))
		}
		cls, _ := (core.Parser{}).Classify(res.Records[i])
		if tr.Class != string(cls) {
			fatal(fmt.Errorf("trace row %d class %q, parser says %q", i, tr.Class, cls))
		}
	}

	rowOf := make(map[int]int, len(recs))
	for i, tr := range recs {
		rowOf[tr.MaskID] = i
	}
	var dead, replicated, stopped uint64
	for i, tr := range recs {
		// Early-stop provenance: a trace row flagged Stopped must be an
		// unsimulated cancellation (no prune verdict, no cycles) and must
		// agree with the offline parser's pseudo-class, and vice versa.
		if cls, _ := (core.Parser{}).Classify(res.Records[i]); tr.Stopped != (cls == core.ClassStopped) {
			fatal(fmt.Errorf("trace row %d stopped flag %v, parser classifies %q", i, tr.Stopped, cls))
		}
		if tr.Stopped {
			stopped++
			if tr.Pruned != "" || tr.Cycles != 0 {
				fatal(fmt.Errorf("trace row %d is stopped-early but carries simulation provenance: %+v", i, tr))
			}
			continue
		}
		switch tr.Pruned {
		case "":
			if tr.RepMask != nil {
				fatal(fmt.Errorf("trace row %d is simulated but names representative %d", i, *tr.RepMask))
			}
		case "dead":
			dead++
			if tr.Class != string(core.ClassMasked) {
				fatal(fmt.Errorf("trace row %d is dead-pruned but classifies %q", i, tr.Class))
			}
		case "replicated":
			replicated++
			if tr.RepMask == nil {
				fatal(fmt.Errorf("trace row %d is replicated but names no representative", i))
			}
			r, ok := rowOf[*tr.RepMask]
			if !ok {
				fatal(fmt.Errorf("trace row %d replicates mask %d, which has no trace row", i, *tr.RepMask))
			}
			if rep := recs[r]; rep.Pruned != "" {
				fatal(fmt.Errorf("trace row %d replicates mask %d, itself pruned %q", i, *tr.RepMask, rep.Pruned))
			} else if rep.Class != tr.Class {
				fatal(fmt.Errorf("trace row %d class %q differs from its representative's %q", i, tr.Class, rep.Class))
			}
		default:
			fatal(fmt.Errorf("trace row %d has unknown prune flag %q", i, tr.Pruned))
		}
	}
	if snap.PrunedDead != dead || snap.PrunedReplicated != replicated {
		fatal(fmt.Errorf("snapshot prune counters %d dead + %d replicated, trace has %d + %d",
			snap.PrunedDead, snap.PrunedReplicated, dead, replicated))
	}
	if *wantPrune && dead+replicated == 0 {
		fatal(fmt.Errorf("-prune: campaign was not pruned at all"))
	}
	if snap.StoppedRuns != stopped {
		fatal(fmt.Errorf("snapshot counts %d stopped runs, trace has %d stopped rows", snap.StoppedRuns, stopped))
	}
	if stopped > 0 {
		if snap.CellsStoppedEarly == 0 {
			fatal(fmt.Errorf("trace has %d stopped rows but the snapshot counts no stopped cells", stopped))
		}
		if !(snap.EffectiveMargin > 0 && snap.EffectiveMargin < 1) {
			fatal(fmt.Errorf("stopped campaign's effective margin %g outside (0, 1)", snap.EffectiveMargin))
		}
	}
	if *wantAdaptive && stopped == 0 {
		fatal(fmt.Errorf("-adaptive: the stopping rule never fired (no stopped-early rows)"))
	}

	if snap.WindowExits > snap.WindowedRuns || snap.WindowEntries > snap.WindowedRuns {
		fatal(fmt.Errorf("window counters inconsistent: %d exits, %d entries, %d windowed runs",
			snap.WindowExits, snap.WindowEntries, snap.WindowedRuns))
	}
	if *wantWindow {
		if snap.WindowedRuns == 0 || snap.WindowEntries == 0 {
			fatal(fmt.Errorf("-window: campaign ran no detail windows (%d windowed, %d entries)",
				snap.WindowedRuns, snap.WindowEntries))
		}
		if snap.FastSteps == 0 || snap.FastTierShare <= 0 || snap.FastTierShare > 1 {
			fatal(fmt.Errorf("-window: no fast-tier work recorded (%d instrs, share %g)",
				snap.FastSteps, snap.FastTierShare))
		}
	}

	var journaled int
	if *wantJournal {
		entries, err := fault.ReadJournalFile(repo.JournalPath(*key))
		if err != nil {
			fatal(err)
		}
		recOf := make(map[int]core.LogRecord, len(res.Records))
		for _, rec := range res.Records {
			recOf[rec.MaskID] = rec
		}
		seen := make(map[int]bool, len(entries))
		for i, e := range entries {
			if e.Campaign != *key {
				fatal(fmt.Errorf("journal entry %d belongs to campaign %q, want %q", i, e.Campaign, *key))
			}
			if seen[e.MaskID] {
				fatal(fmt.Errorf("journal holds mask %d twice", e.MaskID))
			}
			seen[e.MaskID] = true
			stored, ok := recOf[e.MaskID]
			if !ok {
				fatal(fmt.Errorf("journal entry %d is mask %d, which the logs do not have", i, e.MaskID))
			}
			var rec core.LogRecord
			if err := json.Unmarshal(e.Record, &rec); err != nil {
				fatal(fmt.Errorf("journal entry %d record does not parse: %w", i, err))
			}
			if !reflect.DeepEqual(rec, stored) {
				fatal(fmt.Errorf("journal record for mask %d differs from the stored log record", e.MaskID))
			}
			if cls, _ := (core.Parser{}).Classify(stored); e.StoppedEarly != (cls == core.ClassStopped) {
				fatal(fmt.Errorf("journal entry for mask %d flags stopped-early=%v, record classifies %q", e.MaskID, e.StoppedEarly, cls))
			}
		}
		// The journal and the trace's simulated and stopped rows must name
		// the same masks: every simulated run and every stop settlement was
		// journaled, no pruned run was.
		for _, tr := range recs {
			if tr.Pruned == "" && !seen[tr.MaskID] {
				fatal(fmt.Errorf("simulated mask %d has no journal entry", tr.MaskID))
			}
			if tr.Pruned != "" && seen[tr.MaskID] {
				fatal(fmt.Errorf("pruned mask %d was journaled", tr.MaskID))
			}
		}
		journaled = len(entries)
	}
	if *wantResumed && snap.Resumed == 0 {
		fatal(fmt.Errorf("-want-resumed: snapshot reports no resumed runs"))
	}

	var diverged int
	if *wantDivergence {
		var drecs []divergence.Record
		drecs, diverged = checkDivergence(repo, *key, res.Records)
		if *divTable {
			if err := divergence.WriteTable(os.Stdout, divergence.Aggregate(drecs)); err != nil {
				fatal(err)
			}
		}
	}
	var spanCount int
	if *wantSpans {
		simulated := 0
		for _, tr := range recs {
			if tr.Pruned == "" && !tr.Stopped {
				simulated++
			}
		}
		spanCount = checkSpans(repo, *key, simulated, int(snap.Resumed))
	}
	if *fleetPath != "" {
		checkFleet(*fleetPath, *workerSnaps, n)
	}

	fmt.Printf("smokecheck: %s OK — %d runs, classes %s, trace rows %d (%d dead + %d replicated, %d stopped early, %d journaled, %d resumed, %d windowed, %d diverged, %d spans)\n",
		*key, n, snap.ClassString(), len(recs), dead, replicated, stopped, journaled, snap.Resumed, snap.WindowedRuns, diverged, spanCount)
}

// checkDivergence validates the provenance file: schema-gated parse,
// one row per injection in mask order, class agreement with the offline
// parser, measurement-free pruned/resumed stubs, internally consistent
// propagation depths. Returns the records and the diverged-row count.
func checkDivergence(repo *core.LogsRepo, key string, records []core.LogRecord) ([]divergence.Record, int) {
	f, err := os.Open(repo.DivergencePath(key))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	drecs, err := divergence.ReadRecords(f)
	if err != nil {
		fatal(err)
	}
	if len(drecs) != len(records) {
		fatal(fmt.Errorf("divergence file has %d rows, logs have %d records", len(drecs), len(records)))
	}
	diverged := 0
	for i, d := range drecs {
		if d.Campaign != key || d.MaskID != records[i].MaskID {
			fatal(fmt.Errorf("divergence row %d is %s/%d, want %s/%d (order broken)",
				i, d.Campaign, d.MaskID, key, records[i].MaskID))
		}
		if cls, _ := (core.Parser{}).Classify(records[i]); d.Class != string(cls) {
			fatal(fmt.Errorf("divergence row %d class %q, parser says %q", i, d.Class, cls))
		}
		// Pruned rows carry no propagation measurements — nothing was
		// simulated for them (replicated rows do copy the representative's
		// cycle count along with its verdict).
		if d.Pruned != "" && (d.Observed || d.Diverged || d.FaultTouches != 0 || d.PropagationCycles != 0) {
			fatal(fmt.Errorf("divergence row %d is pruned %q but carries measurements: %+v", i, d.Pruned, d))
		}
		if d.Diverged {
			diverged++
			if !d.Observed && !d.Resumed {
				fatal(fmt.Errorf("divergence row %d diverged without consuming the fault", i))
			}
		}
		rederived := d
		rederived.Derive()
		if rederived.PropagationCycles != d.PropagationCycles || rederived.TimeToOutcome != d.TimeToOutcome {
			fatal(fmt.Errorf("divergence row %d depth fields not derivable from primaries: %+v", i, d))
		}
	}
	return drecs, diverged
}

// checkSpans validates the span trace: version-gated parse, one trace
// ID, strictly increasing sequence, every parent resolving inside the
// file, and one run span per simulated injection (a resumed campaign
// re-simulates fewer runs, so resumed rows relax the count into a lower
// bound). Returns the span count.
func checkSpans(repo *core.LogsRepo, key string, simulated, resumed int) int {
	f, err := os.Open(repo.SpansPath(key))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	spans, err := telemetry.ReadSpans(f)
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("span trace is empty"))
	}
	ids := make(map[string]bool, len(spans))
	campaigns, runs := 0, 0
	lastSeq := uint64(0)
	for i, sp := range spans {
		if sp.TraceID != spans[0].TraceID {
			fatal(fmt.Errorf("span %d has trace id %q, file started with %q", i, sp.TraceID, spans[0].TraceID))
		}
		if i > 0 && sp.Seq <= lastSeq {
			fatal(fmt.Errorf("span %d seq %d not after %d (total order broken)", i, sp.Seq, lastSeq))
		}
		lastSeq = sp.Seq
		if sp.SpanID == "" {
			fatal(fmt.Errorf("span %d has no id", i))
		}
		ids[sp.SpanID] = true
		switch sp.Kind {
		case telemetry.SpanCampaign:
			campaigns++
		case telemetry.SpanRun:
			runs++
		}
	}
	for i, sp := range spans {
		if sp.ParentID != "" && !ids[sp.ParentID] {
			fatal(fmt.Errorf("span %d (%s %q) has parent %q outside the trace", i, sp.Kind, sp.Name, sp.ParentID))
		}
	}
	if campaigns == 0 {
		fatal(fmt.Errorf("span trace has no campaign root span"))
	}
	if resumed == 0 && runs != simulated {
		fatal(fmt.Errorf("span trace has %d run spans, want %d (one per simulated injection)", runs, simulated))
	}
	if resumed > 0 && runs < simulated-resumed {
		fatal(fmt.Errorf("span trace has %d run spans, want at least %d", runs, simulated-resumed))
	}
	return len(spans)
}

// checkFleet validates the coordinator's fleet-aggregated snapshot:
// re-merging the per-worker snapshots must reproduce it counter for
// counter, and its run total must match the stored logs.
func checkFleet(fleetPath, workerSnaps string, logRecords uint64) {
	var fleet telemetry.Snapshot
	readSnap(fleetPath, &fleet)
	if workerSnaps == "" {
		fatal(fmt.Errorf("-fleet needs -worker-snaps"))
	}
	var parts []telemetry.Snapshot
	for _, p := range strings.Split(workerSnaps, ",") {
		var s telemetry.Snapshot
		readSnap(strings.TrimSpace(p), &s)
		parts = append(parts, s)
	}
	merged := telemetry.MergeSnapshots(parts...)
	if fleet.RunsDone != merged.RunsDone || fleet.SimCycles != merged.SimCycles ||
		fleet.DivergedRuns != merged.DivergedRuns || fleet.RunsQueued != merged.RunsQueued {
		fatal(fmt.Errorf("fleet snapshot (%d runs, %d cycles, %d diverged) != merged workers (%d, %d, %d)",
			fleet.RunsDone, fleet.SimCycles, fleet.DivergedRuns,
			merged.RunsDone, merged.SimCycles, merged.DivergedRuns))
	}
	if !reflect.DeepEqual(fleet.ClassCounts, merged.ClassCounts) {
		fatal(fmt.Errorf("fleet class histogram %v != merged workers %v", fleet.ClassCounts, merged.ClassCounts))
	}
	if fleet.RunsDone != logRecords {
		fatal(fmt.Errorf("fleet snapshot has %d runs, logs have %d records", fleet.RunsDone, logRecords))
	}
	fmt.Printf("smokecheck: fleet snapshot equals the merge of %d worker snapshots (%d runs)\n",
		len(parts), fleet.RunsDone)
}

func readSnap(path string, s *telemetry.Snapshot) {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if err := json.Unmarshal(b, s); err != nil {
		fatal(fmt.Errorf("%s does not parse: %w", path, err))
	}
}

// checkLive probes a running coordinator's observability plane:
// /snapshot.json parses, /metrics carries HELP'd exposition, and an SSE
// subscription to /events opens with a "snapshot" frame and streams the
// required number of run and span frames before the deadline.
func checkLive(base string, minRuns, minSpans int, timeout time.Duration) {
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/snapshot.json")
	if err != nil {
		fatal(err)
	}
	var snap telemetry.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("/snapshot.json does not parse: %w", err))
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatal(err)
	}
	if !strings.Contains(string(metrics), "# HELP faultinject_runs_done_total") {
		fatal(fmt.Errorf("/metrics lacks the HELP'd exposition"))
	}

	// The SSE subscription: no client timeout (the stream is long-lived);
	// the overall deadline instead bounds the read loop via the context.
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/events", nil)
	if err != nil {
		fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		fatal(fmt.Errorf("/events Content-Type = %q", ct))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	runs, spans := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		event := strings.TrimPrefix(line, "event: ")
		if first {
			if event != "snapshot" {
				fatal(fmt.Errorf("/events first frame is %q, want snapshot", event))
			}
			first = false
		}
		switch event {
		case "run":
			runs++
		case "span":
			spans++
		}
		if runs >= minRuns && spans >= minSpans {
			fmt.Printf("smokecheck: live plane OK — snapshot served, %d run and %d span frames streamed\n", runs, spans)
			return
		}
	}
	fatal(fmt.Errorf("/events ended after %d run and %d span frames, want %d and %d (scan err: %v)",
		runs, spans, minRuns, minSpans, sc.Err()))
}

// checkService validates the campaign service's durable state after a
// smoke round: every named campaign's spool entry parses under its
// schema gate and sits in the expected lifecycle state, done campaigns
// have an indexed outcome table whose shares form a distribution, and
// campaigns that never finished left no index behind.
func checkService(spoolDir, indexDir, pairs string) {
	if spoolDir == "" || indexDir == "" {
		fatal(fmt.Errorf("-service needs -spool and -index"))
	}
	spool, err := svc.OpenSpool(spoolDir)
	if err != nil {
		fatal(err)
	}
	entries, err := spool.Scan()
	if err != nil {
		fatal(err)
	}
	byID := make(map[string]*svc.SpoolEntry, len(entries))
	for _, e := range entries {
		byID[e.ID] = e
	}
	index, err := fault.NewResultIndex(indexDir)
	if err != nil {
		fatal(err)
	}
	checked := 0
	for _, pair := range strings.Split(pairs, ",") {
		id, state, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fatal(fmt.Errorf("-service: bad pair %q, want id=state", pair))
		}
		e := byID[id]
		if e == nil {
			fatal(fmt.Errorf("campaign %s has no spool entry in %s", id, spoolDir))
		}
		if e.State != state {
			fatal(fmt.Errorf("campaign %s spooled in state %q, want %q", id, e.State, state))
		}
		if state == "done" {
			cells, err := index.Load(id)
			if err != nil {
				fatal(fmt.Errorf("done campaign %s has no result index: %w", id, err))
			}
			if len(cells) == 0 {
				fatal(fmt.Errorf("done campaign %s indexed zero cells", id))
			}
			for _, c := range cells {
				if c.Runs <= 0 {
					fatal(fmt.Errorf("campaign %s cell %s indexed %d runs", id, c.Key, c.Runs))
				}
				var sum float64
				for _, s := range c.Shares {
					sum += s
				}
				if sum < 0.999 || sum > 1.001 {
					fatal(fmt.Errorf("campaign %s cell %s shares sum to %g, want 1", id, c.Key, sum))
				}
				if c.Vulnerability < 0 || c.Vulnerability > 1 {
					fatal(fmt.Errorf("campaign %s cell %s vulnerability %g outside [0, 1]", id, c.Key, c.Vulnerability))
				}
			}
		} else if index.Has(id) {
			fatal(fmt.Errorf("campaign %s is %s but left a result index behind", id, state))
		}
		checked++
	}
	fmt.Printf("smokecheck: service state OK — %d campaigns checked in %s (%d spooled total)\n",
		checked, spoolDir, len(entries))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokecheck:", err)
	os.Exit(1)
}
