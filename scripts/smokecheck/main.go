// Command smokecheck cross-checks the three artifacts of one telemetry-
// enabled campaign — the stored logs, the final snapshot JSON, and the
// JSONL injection trace — against each other (the CI smoke job's
// assertion step):
//
//   - the snapshot JSON parses and its run totals balance,
//   - the snapshot's outcome histogram equals what the offline parser
//     computes from the stored records,
//   - the trace has exactly one row per injection, in (campaign, mask)
//     order, with classes matching the offline parser record-for-record.
//
// Usage:
//
//	smokecheck -logs logsrepo -key gefin-x86__qsort__rf.int \
//	           -snapshot snap.json [-trace logsrepo/<key>.trace.jsonl]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

func main() {
	logsDir := flag.String("logs", "", "logs repository directory")
	key := flag.String("key", "", "campaign key to check")
	snapPath := flag.String("snapshot", "", "final snapshot JSON file")
	tracePath := flag.String("trace", "", "JSONL injection trace (default <logs>/<key>.trace.jsonl)")
	flag.Parse()
	if *logsDir == "" || *key == "" || *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	repo, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	res, err := repo.Load(*key)
	if err != nil {
		fatal(err)
	}
	breakdown := (core.Parser{}).ParseAll(res.Records)

	b, err := os.ReadFile(*snapPath)
	if err != nil {
		fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		fatal(fmt.Errorf("snapshot JSON does not parse: %w", err))
	}

	n := uint64(len(res.Records))
	if snap.RunsDone != n || snap.RunsStarted != n || snap.RunsQueued != n {
		fatal(fmt.Errorf("snapshot run totals %d/%d/%d queued/started/done, logs have %d records",
			snap.RunsQueued, snap.RunsStarted, snap.RunsDone, n))
	}
	var sum uint64
	for _, c := range snap.ClassCounts {
		sum += c
	}
	if sum != n {
		fatal(fmt.Errorf("snapshot classes sum to %d, want %d", sum, n))
	}
	if len(snap.ClassCounts) != len(breakdown.Counts) {
		fatal(fmt.Errorf("snapshot has %d classes, parser %d: %v vs %v",
			len(snap.ClassCounts), len(breakdown.Counts), snap.ClassCounts, breakdown.Counts))
	}
	for cls, want := range breakdown.Counts {
		if got := snap.ClassCounts[string(cls)]; got != uint64(want) {
			fatal(fmt.Errorf("snapshot class %s = %d, parser says %d", cls, got, want))
		}
	}

	path := *tracePath
	if path == "" {
		path = repo.TracePath(*key)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := fault.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) != len(res.Records) {
		fatal(fmt.Errorf("trace has %d rows, logs have %d records", len(recs), len(res.Records)))
	}
	for i, tr := range recs {
		if tr.MaskID != res.Records[i].MaskID {
			fatal(fmt.Errorf("trace row %d is mask %d, logs row is mask %d (order broken)",
				i, tr.MaskID, res.Records[i].MaskID))
		}
		cls, _ := (core.Parser{}).Classify(res.Records[i])
		if tr.Class != string(cls) {
			fatal(fmt.Errorf("trace row %d class %q, parser says %q", i, tr.Class, cls))
		}
	}

	fmt.Printf("smokecheck: %s OK — %d runs, classes %s, trace rows %d\n",
		*key, n, snap.ClassString(), len(recs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokecheck:", err)
	os.Exit(1)
}
