// Command smokecheck cross-checks the three artifacts of one telemetry-
// enabled campaign — the stored logs, the final snapshot JSON, and the
// JSONL injection trace — against each other (the CI smoke job's
// assertion step):
//
//   - the snapshot JSON parses and its run totals balance,
//   - the snapshot's outcome histogram equals what the offline parser
//     computes from the stored records,
//   - the trace has exactly one row per injection, in (campaign, mask)
//     order, with classes matching the offline parser record-for-record,
//   - prune provenance is consistent: dead-pruned rows classify Masked,
//     replicated rows name a representative with the same class, and the
//     snapshot's prune counters equal the trace's flagged-row counts
//     (with -prune additionally asserting that pruning happened at all),
//   - with -window, the snapshot shows detail-window execution actually
//     happened: windowed runs with functional-tier entries and fast-tier
//     instructions, and internally consistent window counters,
//   - with -journal, the durable run journal carries exactly one entry
//     per simulated (non-pruned) injection, each labeled with the
//     campaign key and byte-equivalent to the stored log record, and
//     with -want-resumed the snapshot reports at least one run loaded
//     from the journal rather than re-simulated.
//
// Usage:
//
//	smokecheck -logs logsrepo -key gefin-x86__qsort__rf.int \
//	           -snapshot snap.json [-trace logsrepo/<key>.trace.jsonl] [-prune]
//	           [-journal [-want-resumed]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

func main() {
	logsDir := flag.String("logs", "", "logs repository directory")
	key := flag.String("key", "", "campaign key to check")
	snapPath := flag.String("snapshot", "", "final snapshot JSON file")
	tracePath := flag.String("trace", "", "JSONL injection trace (default <logs>/<key>.trace.jsonl)")
	wantPrune := flag.Bool("prune", false, "assert the campaign was pruned (nonzero dead or replicated rows)")
	wantWindow := flag.Bool("window", false, "assert the campaign ran under a detail window (windowed runs, entries, fast-tier work)")
	wantJournal := flag.Bool("journal", false, "validate the run journal against the logs and trace")
	wantResumed := flag.Bool("want-resumed", false, "assert the snapshot reports runs resumed from the journal")
	flag.Parse()
	if *logsDir == "" || *key == "" || *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	repo, err := core.NewLogsRepo(*logsDir)
	if err != nil {
		fatal(err)
	}
	res, err := repo.Load(*key)
	if err != nil {
		fatal(err)
	}
	breakdown := (core.Parser{}).ParseAll(res.Records)

	b, err := os.ReadFile(*snapPath)
	if err != nil {
		fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		fatal(fmt.Errorf("snapshot JSON does not parse: %w", err))
	}

	n := uint64(len(res.Records))
	if snap.RunsDone != n || snap.RunsStarted != n || snap.RunsQueued != n {
		fatal(fmt.Errorf("snapshot run totals %d/%d/%d queued/started/done, logs have %d records",
			snap.RunsQueued, snap.RunsStarted, snap.RunsDone, n))
	}
	var sum uint64
	for _, c := range snap.ClassCounts {
		sum += c
	}
	if sum != n {
		fatal(fmt.Errorf("snapshot classes sum to %d, want %d", sum, n))
	}
	if len(snap.ClassCounts) != len(breakdown.Counts) {
		fatal(fmt.Errorf("snapshot has %d classes, parser %d: %v vs %v",
			len(snap.ClassCounts), len(breakdown.Counts), snap.ClassCounts, breakdown.Counts))
	}
	for cls, want := range breakdown.Counts {
		if got := snap.ClassCounts[string(cls)]; got != uint64(want) {
			fatal(fmt.Errorf("snapshot class %s = %d, parser says %d", cls, got, want))
		}
	}

	path := *tracePath
	if path == "" {
		path = repo.TracePath(*key)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	recs, err := fault.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	if len(recs) != len(res.Records) {
		fatal(fmt.Errorf("trace has %d rows, logs have %d records", len(recs), len(res.Records)))
	}
	for i, tr := range recs {
		if tr.MaskID != res.Records[i].MaskID {
			fatal(fmt.Errorf("trace row %d is mask %d, logs row is mask %d (order broken)",
				i, tr.MaskID, res.Records[i].MaskID))
		}
		cls, _ := (core.Parser{}).Classify(res.Records[i])
		if tr.Class != string(cls) {
			fatal(fmt.Errorf("trace row %d class %q, parser says %q", i, tr.Class, cls))
		}
	}

	rowOf := make(map[int]int, len(recs))
	for i, tr := range recs {
		rowOf[tr.MaskID] = i
	}
	var dead, replicated uint64
	for i, tr := range recs {
		switch tr.Pruned {
		case "":
			if tr.RepMask != nil {
				fatal(fmt.Errorf("trace row %d is simulated but names representative %d", i, *tr.RepMask))
			}
		case "dead":
			dead++
			if tr.Class != string(core.ClassMasked) {
				fatal(fmt.Errorf("trace row %d is dead-pruned but classifies %q", i, tr.Class))
			}
		case "replicated":
			replicated++
			if tr.RepMask == nil {
				fatal(fmt.Errorf("trace row %d is replicated but names no representative", i))
			}
			r, ok := rowOf[*tr.RepMask]
			if !ok {
				fatal(fmt.Errorf("trace row %d replicates mask %d, which has no trace row", i, *tr.RepMask))
			}
			if rep := recs[r]; rep.Pruned != "" {
				fatal(fmt.Errorf("trace row %d replicates mask %d, itself pruned %q", i, *tr.RepMask, rep.Pruned))
			} else if rep.Class != tr.Class {
				fatal(fmt.Errorf("trace row %d class %q differs from its representative's %q", i, tr.Class, rep.Class))
			}
		default:
			fatal(fmt.Errorf("trace row %d has unknown prune flag %q", i, tr.Pruned))
		}
	}
	if snap.PrunedDead != dead || snap.PrunedReplicated != replicated {
		fatal(fmt.Errorf("snapshot prune counters %d dead + %d replicated, trace has %d + %d",
			snap.PrunedDead, snap.PrunedReplicated, dead, replicated))
	}
	if *wantPrune && dead+replicated == 0 {
		fatal(fmt.Errorf("-prune: campaign was not pruned at all"))
	}

	if snap.WindowExits > snap.WindowedRuns || snap.WindowEntries > snap.WindowedRuns {
		fatal(fmt.Errorf("window counters inconsistent: %d exits, %d entries, %d windowed runs",
			snap.WindowExits, snap.WindowEntries, snap.WindowedRuns))
	}
	if *wantWindow {
		if snap.WindowedRuns == 0 || snap.WindowEntries == 0 {
			fatal(fmt.Errorf("-window: campaign ran no detail windows (%d windowed, %d entries)",
				snap.WindowedRuns, snap.WindowEntries))
		}
		if snap.FastSteps == 0 || snap.FastTierShare <= 0 || snap.FastTierShare > 1 {
			fatal(fmt.Errorf("-window: no fast-tier work recorded (%d instrs, share %g)",
				snap.FastSteps, snap.FastTierShare))
		}
	}

	var journaled int
	if *wantJournal {
		entries, err := fault.ReadJournalFile(repo.JournalPath(*key))
		if err != nil {
			fatal(err)
		}
		recOf := make(map[int]core.LogRecord, len(res.Records))
		for _, rec := range res.Records {
			recOf[rec.MaskID] = rec
		}
		seen := make(map[int]bool, len(entries))
		for i, e := range entries {
			if e.Campaign != *key {
				fatal(fmt.Errorf("journal entry %d belongs to campaign %q, want %q", i, e.Campaign, *key))
			}
			if seen[e.MaskID] {
				fatal(fmt.Errorf("journal holds mask %d twice", e.MaskID))
			}
			seen[e.MaskID] = true
			stored, ok := recOf[e.MaskID]
			if !ok {
				fatal(fmt.Errorf("journal entry %d is mask %d, which the logs do not have", i, e.MaskID))
			}
			var rec core.LogRecord
			if err := json.Unmarshal(e.Record, &rec); err != nil {
				fatal(fmt.Errorf("journal entry %d record does not parse: %w", i, err))
			}
			if !reflect.DeepEqual(rec, stored) {
				fatal(fmt.Errorf("journal record for mask %d differs from the stored log record", e.MaskID))
			}
		}
		// The journal and the trace's simulated rows must name the same
		// masks: every simulated run was journaled, no pruned run was.
		for _, tr := range recs {
			if tr.Pruned == "" && !seen[tr.MaskID] {
				fatal(fmt.Errorf("simulated mask %d has no journal entry", tr.MaskID))
			}
			if tr.Pruned != "" && seen[tr.MaskID] {
				fatal(fmt.Errorf("pruned mask %d was journaled", tr.MaskID))
			}
		}
		journaled = len(entries)
	}
	if *wantResumed && snap.Resumed == 0 {
		fatal(fmt.Errorf("-want-resumed: snapshot reports no resumed runs"))
	}

	fmt.Printf("smokecheck: %s OK — %d runs, classes %s, trace rows %d (%d dead + %d replicated, %d journaled, %d resumed, %d windowed)\n",
		*key, n, snap.ClassString(), len(recs), dead, replicated, journaled, snap.Resumed, snap.WindowedRuns)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smokecheck:", err)
	os.Exit(1)
}
