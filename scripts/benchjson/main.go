// Command benchjson converts `go test -bench` text output on stdin into
// a stable JSON document on stdout, so benchmark baselines can be
// committed and diffed (e.g. results/BENCH_scheduler.json via
// scripts/bench_scheduler.sh). Every `Benchmark...` result line becomes
// one entry carrying the iteration count and all reported metrics
// (ns/op, custom b.ReportMetric units, allocation stats); the goos /
// goarch / pkg / cpu header lines become the environment block.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Environment map[string]string `json:"environment,omitempty"`
	Benchmarks  []result          `json:"benchmarks"`
}

func main() {
	doc := document{Environment: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Environment[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	if len(doc.Environment) == 0 {
		doc.Environment = nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseResult parses one result line:
//
//	BenchmarkName/sub-8   10   123456 ns/op   42.5 runs/s   3 allocs/op
//
// i.e. name, iterations, then (value, unit) pairs.
func parseResult(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
