// Multibit: the extension studies the paper supports beyond its
// single-bit transient evaluation (§III.A) — permanent and intermittent
// faults, double-bit faults within one structure, and simultaneous
// faults in two different structures, all on the same benchmark and
// tool so the fault models can be compared directly.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 100, "injections per campaign")
	bench := flag.String("bench", "sha", "benchmark")
	tool := flag.String("tool", "gefin-x86", "tool configuration")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := sims.Factory(*tool, w)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		log.Fatal(err)
	}
	sim := factory()
	geom := func(name string) (int, int) {
		arr := sim.Structures()[name]
		return arr.Entries(), arr.BitsPerEntry()
	}
	l1dE, l1dB := geom("l1d.data")
	rfE, rfB := geom("rf.int")

	run := func(label string, masks []fault.Mask) {
		res, err := core.RunCampaign(core.CampaignSpec{
			Tool: *tool, Benchmark: *bench, Structure: label,
			Masks: masks, Factory: factory, TimeoutFactor: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %s\n", label, core.Parser{}.ParseAll(res.Records))
	}

	gen := func(structure string, entries, bits int, model fault.Model, sites int, adjacent bool, seed int64) []fault.Mask {
		masks, err := fault.Generate(fault.GeneratorSpec{
			Structure: structure, Entries: entries, BitsPerEntry: bits,
			MaxCycle: golden.Cycles, Model: model, Count: *n,
			Seed: seed, SitesPerMask: sites, Adjacent: adjacent,
			Duration: golden.Cycles / 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		return masks
	}

	fmt.Printf("fault-model study: %s on %s, %d injections each\n\n", *bench, sim.Name(), *n)
	run("L1D transient single-bit", gen("l1d.data", l1dE, l1dB, fault.ModelTransient, 1, false, 1))
	run("L1D transient double-bit", gen("l1d.data", l1dE, l1dB, fault.ModelTransient, 2, false, 2))
	run("L1D transient burst (4 adjacent)", gen("l1d.data", l1dE, l1dB, fault.ModelTransient, 4, true, 7))
	run("L1D intermittent", gen("l1d.data", l1dE, l1dB, fault.ModelIntermittent, 1, false, 3))
	run("L1D permanent", gen("l1d.data", l1dE, l1dB, fault.ModelPermanent, 1, false, 4))

	// Simultaneous faults in two structures: pairwise merge of one
	// L1D population and one register-file population.
	a := gen("l1d.data", l1dE, l1dB, fault.ModelTransient, 1, false, 5)
	b := gen("rf.int", rfE, rfB, fault.ModelTransient, 1, false, 6)
	merged, err := fault.MultiStructure(a, b)
	if err != nil {
		log.Fatal(err)
	}
	run("L1D + rf.int simultaneous", merged)
}
