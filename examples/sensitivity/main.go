// Sensitivity: the paper notes (footnote 4) that the injectors support
// studies "for different sizes and organizations of the hardware
// structures". This example sweeps the L1D capacity of the Gem5-like
// machine and measures how the cache's vulnerability scales: smaller
// caches hold a larger live fraction, so a random fault is more likely
// to hit program data — structure size is a first-order reliability
// knob, which is exactly why early design-stage injection matters.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gem5"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 120, "injections per cache size")
	bench := flag.String("bench", "qsort", "benchmark")
	flag.Parse()

	w, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	img, err := w.Image(asm.TargetCISC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L1D size sweep on GeFIN-x86 / %s (%d transient injections each)\n\n", *bench, *n)
	fmt.Printf("%8s %10s %10s %10s %8s\n", "L1D", "golden cyc", "masked", "SDC", "vuln")
	for _, kb := range []int{8, 16, 32, 64} {
		cfg := gem5.DefaultConfig(gem5.ISAX86)
		cfg.L1D.Size = kb << 10
		factory := func() core.Simulator { return gem5.New(cfg, img) }

		golden, err := core.Golden(factory)
		if err != nil {
			log.Fatal(err)
		}
		sim := factory()
		arr := sim.Structures()["l1d.data"]
		masks, err := fault.Generate(fault.GeneratorSpec{
			Structure: "l1d.data", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
			MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: *n, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunCampaign(core.CampaignSpec{
			Benchmark: *bench, Structure: "l1d.data", Masks: masks, Factory: factory,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := core.Parser{}.ParseAll(res.Records)
		fmt.Printf("%6dKB %10d %9.2f%% %9.2f%% %7.2f%%\n",
			kb, golden.Cycles, b.Pct(core.ClassMasked), b.Pct(core.ClassSDC), b.Vulnerability())
	}
	fmt.Println("\n→ halving the cache roughly doubles the live fraction a random fault can hit;")
	fmt.Println("  capacity vs. vulnerability is the protection trade-off the paper motivates.")
}
