// ISA compare: the paper's cross-ISA study in miniature — the same
// algorithm (sha) compiled for the x86-flavoured and the ARM-flavoured
// ISA, both executed on the Gem5-like simulator, with identical fault
// populations injected into the integer register file and the L1I
// instruction arrays. The instruction streams genuinely differ
// (variable- vs fixed-length encoding, two- vs three-operand ALU,
// flags vs fused compare-and-branch), so the reliability reports differ
// too — while the program outputs agree bit for bit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 150, "injections per campaign")
	bench := flag.String("bench", "sha", "benchmark")
	flag.Parse()

	// First show that the two ISAs really execute different code.
	w, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := report.GoldenStats(report.Options{
		Benchmarks: []string{*bench},
		Tools:      []string{sims.GeFINX86, sims.GeFINARM},
	})
	if err != nil {
		log.Fatal(err)
	}
	x := stats[*bench][sims.GeFINX86]
	a := stats[*bench][sims.GeFINARM]
	fmt.Printf("%s on GeFIN, fault-free:\n", w.Name)
	fmt.Printf("  %-22s %12s %12s\n", "", "x86", "arm")
	for _, k := range []string{"committed_instrs", "committed_uops", "committed_loads",
		"committed_stores", "cycles", "bp_mispredicts", "l1i_read_misses"} {
		fmt.Printf("  %-22s %12d %12d\n", k, x[k], a[k])
	}

	opt := report.Options{
		Injections: *n,
		Seed:       99,
		Benchmarks: []string{*bench},
		Tools:      []string{sims.GeFINX86, sims.GeFINARM},
	}
	for _, figID := range []int{2, 4} { // register file and L1I
		spec, _ := report.FigureByID(figID)
		fd, err := report.RunFigure(spec, opt, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fd.Render(os.Stdout)
		vx := fd.Average(sims.GeFINX86).Vulnerability()
		va := fd.Average(sims.GeFINARM).Vulnerability()
		fmt.Printf("→ %s vulnerability: x86 %.2f%% vs arm %.2f%% (Δ %.2f points)\n",
			spec.Structure, vx, va, vx-va)
	}
}
