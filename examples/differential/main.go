// Differential: the paper's headline experiment in miniature — the same
// L1D data-array fault population injected through both x86 injectors
// (MaFIN on the MARSS-like simulator, GeFIN on the Gem5-like one),
// exposing the Remark 3 contrast: MARSS's dual-copy caches, hypervisor
// syscalls and aggressive load issue mask more L1D faults than Gem5's
// write-back hierarchy.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/sims"
)

func main() {
	n := flag.Int("n", 150, "injections per campaign")
	bench := flag.String("bench", "qsort", "benchmark")
	flag.Parse()

	opt := report.Options{
		Injections: *n,
		Seed:       42,
		Benchmarks: []string{*bench},
		Tools:      []string{sims.MaFINX86, sims.GeFINX86},
	}
	spec, _ := report.FigureByID(3) // L1D data arrays
	fd, err := report.RunFigure(spec, opt, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	fd.Render(os.Stdout)

	m := fd.Average(sims.MaFINX86)
	g := fd.Average(sims.GeFINX86)
	fmt.Printf("\nL1D vulnerability on %s: MaFIN %.2f%% vs GeFIN %.2f%%\n",
		*bench, m.Vulnerability(), g.Vulnerability())
	switch {
	case m.Vulnerability() < g.Vulnerability():
		fmt.Println("→ the MARSS-like tool reports the less vulnerable L1D (the paper's Remark 3 direction)")
	case m.Vulnerability() == g.Vulnerability():
		fmt.Println("→ the two tools agree on this sample; increase -n for a sharper contrast")
	default:
		fmt.Println("→ reversed on this benchmark/sample (the paper notes qsort and smooth reverse too)")
	}
}
