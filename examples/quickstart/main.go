// Quickstart: inject a single transient fault into the integer physical
// register file of the Gem5-like simulator running qsort, and classify
// the outcome against the fault-free golden run — the smallest complete
// use of the injection framework.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sims"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a benchmark and a tool configuration.
	bench, err := workload.ByName("qsort")
	if err != nil {
		log.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, bench)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fault-free golden run: reference output and cycle count.
	golden, err := core.Golden(factory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d cycles, %d instructions, output %s…\n",
		golden.Cycles, golden.Committed, golden.OutputHash[:8])

	// 3. One fault mask: a bit flip in the integer register file at
	//    one third of the execution.
	mask := fault.Mask{ID: 0, Sites: []fault.Site{{
		Structure: "rf.int",
		Entry:     7,
		Bit:       13,
		Model:     fault.ModelTransient,
		Cycle:     golden.Cycles / 3,
	}}}

	// 4. Run the injection (a fresh simulator instance, the fault armed
	//    on the structure, a 3x cycle budget) and classify.
	rec, err := core.RunOne(factory, mask, golden, 3, true)
	if err != nil {
		log.Fatal(err)
	}
	class, detail := core.Parser{}.Classify(rec)
	fmt.Printf("injection into %s[%d] bit %d at cycle %d:\n",
		mask.Sites[0].Structure, mask.Sites[0].Entry, mask.Sites[0].Bit, mask.Sites[0].Cycle)
	fmt.Printf("  raw status: %s, output match: %v\n", rec.Status, rec.OutputMatch)
	fmt.Printf("  class: %s", class)
	if detail != core.DetailNone {
		fmt.Printf(" (%s)", detail)
	}
	fmt.Println()
}
