// Package repro's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, plus the two ablation benchmarks
// DESIGN.md calls out (§III.B early-stop optimizations; §III.C cache
// data-array modelling). The figure benchmarks run reduced injection
// campaigns per iteration and report the measured vulnerabilities as
// custom metrics; the paper-scale campaigns are run with cmd/figures.
package repro_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/divergence"
	"repro/internal/fault"
	"repro/internal/gem5"
	"repro/internal/interp"
	"repro/internal/marss"
	"repro/internal/report"
	"repro/internal/sims"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// benchOptions keeps per-iteration campaign cost bounded; the shape of
// the result (who wins) is stable even at this reduced scale.
func benchOptions(seed int64) report.Options {
	return report.Options{
		Injections: 25,
		Seed:       seed,
		Benchmarks: []string{"qsort", "sha"},
		Workers:    1,
	}
}

// benchFigure runs one classification figure campaign per iteration and
// reports the per-tool vulnerability.
func benchFigure(b *testing.B, figID int) {
	b.Helper()
	spec, err := report.FigureByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	var last *report.FigureData
	for i := 0; i < b.N; i++ {
		fd, err := report.RunFigure(spec, benchOptions(int64(figID)), nil)
		if err != nil {
			b.Fatal(err)
		}
		last = fd
	}
	for _, tool := range last.Tools() {
		b.ReportMetric(last.Average(tool).Vulnerability(), "vuln%/"+sims.ShortLabel(tool))
	}
}

// BenchmarkFig2RegFile regenerates Figure 2 (integer physical register
// file classification).
func BenchmarkFig2RegFile(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFig3L1D regenerates Figure 3 (L1D data arrays).
func BenchmarkFig3L1D(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFig4L1I regenerates Figure 4 (L1I instruction arrays).
func BenchmarkFig4L1I(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFig5L2 regenerates Figure 5 (L2 data arrays).
func BenchmarkFig5L2(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFig6LSQ regenerates Figure 6 (load/store queue data field).
func BenchmarkFig6LSQ(b *testing.B) { benchFigure(b, 6) }

// BenchmarkTable2Configs builds the three Table II machine
// configurations and boots one simulator of each.
func BenchmarkTable2Configs(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	imgC, err := w.Image(asm.TargetCISC)
	if err != nil {
		b.Fatal(err)
	}
	imgR, err := w.Image(asm.TargetRISC)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = marss.New(marss.DefaultConfig(), imgC)
		_ = gem5.New(gem5.DefaultConfig(gem5.ISAX86), imgC)
		_ = gem5.New(gem5.DefaultConfig(gem5.ISAARM), imgR)
	}
}

// BenchmarkTable3FaultModels exercises the Table III fault-model
// generator across all three models plus multi-bit masks.
func BenchmarkTable3FaultModels(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range []fault.Model{fault.ModelTransient, fault.ModelIntermittent, fault.ModelPermanent} {
			if _, err := fault.Generate(fault.GeneratorSpec{
				Structure: "l1d.data", Entries: 512, BitsPerEntry: 512,
				MaxCycle: 100000, Model: m, Count: 100, Seed: int64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := fault.Generate(fault.GeneratorSpec{
			Structure: "rf.int", Entries: 256, BitsPerEntry: 64,
			MaxCycle: 100000, Model: fault.ModelTransient, Count: 100,
			Seed: int64(i), SitesPerMask: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Structures enumerates the injectable structures of
// every tool (the Table IV inventory).
func BenchmarkTable4Structures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.RenderStructuresTable(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplingTable computes the §IV.A statistical sampling numbers
// and pins the paper's values.
func BenchmarkSamplingTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if n := fault.SampleSize(0, 0.99, 0.03); n != 1843 {
			b.Fatalf("n = %d, want 1843", n)
		}
		if n := fault.SampleSize(0, 0.99, 0.05); n != 663 {
			b.Fatalf("n = %d, want 663", n)
		}
	}
	b.ReportMetric(100*fault.MarginFor(0, 2000, 0.99), "margin%@2000")
}

// BenchmarkRemarkStats collects the fault-free runtime statistics that
// back Remarks 1–11 and reports the Remark 3 issued-load ratio.
func BenchmarkRemarkStats(b *testing.B) {
	opt := report.Options{Benchmarks: []string{"qsort", "sha", "fft"}}
	var stats map[string]map[string]map[string]uint64
	var err error
	for i := 0; i < b.N; i++ {
		stats, err = report.GoldenStats(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	var m, g float64
	for _, bench := range opt.Benchmarks {
		m += float64(stats[bench][sims.MaFINX86]["issued_loads"])
		g += float64(stats[bench][sims.GeFINX86]["issued_loads"])
	}
	b.ReportMetric(m/g, "issuedloads-M/G")
}

// BenchmarkEarlyStopAblation measures the §III.B early-stop
// optimizations: the same campaign with and without the invalid-entry
// and overwritten-before-read stops. The paper reports 30–70% per-run
// savings.
func BenchmarkEarlyStopAblation(b *testing.B) {
	w, err := workload.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		b.Fatal(err)
	}
	sim := factory()
	arr := sim.Structures()["l1d.data"]
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: "l1d.data", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 30, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run("earlystop-"+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCampaign(core.CampaignSpec{
					Benchmark: "sha", Structure: "l1d.data",
					Masks: masks, Factory: factory, Workers: 1,
					DisableEarlyStop: mode.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInOrderAblation runs the OoO-vs-in-order reliability study the
// paper suggests for MARSS's two pipeline models: the same register-file
// fault population injected into the Table II OoO model and the
// Atom-like in-order model, reporting both vulnerabilities.
func BenchmarkInOrderAblation(b *testing.B) {
	w, err := workload.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	img, err := w.Image(asm.TargetCISC)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cfg  marss.Config
	}{{"ooo", marss.DefaultConfig()}, {"inorder", marss.InOrderConfig()}} {
		b.Run(mode.name, func(b *testing.B) {
			factory := func() core.Simulator { return marss.New(mode.cfg, img) }
			golden, err := core.Golden(factory)
			if err != nil {
				b.Fatal(err)
			}
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: "rf.int", Entries: 256, BitsPerEntry: 64,
				MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 25, Seed: 31,
			})
			if err != nil {
				b.Fatal(err)
			}
			var vuln float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunCampaign(core.CampaignSpec{
					Benchmark: "sha", Structure: "rf.int",
					Masks: masks, Factory: factory, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				vuln = (core.Parser{}).ParseAll(res.Records).Vulnerability()
			}
			b.ReportMetric(vuln, "vuln%")
		})
	}
}

// BenchmarkCheckpointAblation measures checkpoint-based prefix sharing:
// the same campaign with every run booted from scratch versus runs whose
// faults start beyond the checkpoint restored from a shared
// drained-machine snapshot (the paper's use of simulator checkpoints to
// speed up campaigns).
func BenchmarkCheckpointAblation(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.MaFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		b.Fatal(err)
	}
	sim := factory()
	arr := sim.Structures()["rf.int"]
	// Late faults benefit most: all in the last third of the run.
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: "rf.int", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles / 3, Model: fault.ModelTransient, Count: 20, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := range masks {
		for j := range masks[i].Sites {
			masks[i].Sites[j].Cycle += 2 * golden.Cycles / 3
		}
	}
	for _, mode := range []struct {
		name string
		use  bool
	}{{"from-boot", false}, {"from-checkpoint", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunCampaign(core.CampaignSpec{
					Benchmark: "qsort", Structure: "rf.int",
					Masks: masks, Factory: factory, Workers: 1,
					UseCheckpoint: mode.use,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatrixScheduler measures the cross-campaign matrix scheduler:
// every injection run of a {tool} × {qsort, sha} × {rf.int, lsq.data}
// matrix flattened onto one shared worker pool, with golden runs
// memoized per {tool, benchmark} row. Each iteration runs the whole
// matrix with a fresh private golden cache, so the reported throughput
// includes the amortized golden cost. Metrics: injection runs per
// second and simulated megacycles per second.
func BenchmarkMatrixScheduler(b *testing.B) {
	type row struct {
		tool, bench string
		factory     core.Factory
		golden      core.GoldenInfo
	}
	var rows []row
	cache := core.NewGoldenCache()
	for _, tool := range []string{sims.MaFINX86, sims.GeFINX86} {
		for _, bench := range []string{"qsort", "sha"} {
			w, err := workload.ByName(bench)
			if err != nil {
				b.Fatal(err)
			}
			factory, err := sims.Factory(tool, w)
			if err != nil {
				b.Fatal(err)
			}
			golden, err := cache.Golden(tool, bench, factory)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{tool, bench, factory, golden})
		}
	}
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, r := range rows {
			for _, structure := range []string{"rf.int", "lsq.data"} {
				entries, bits, ok, err := cache.Geometry(r.tool, r.bench, r.factory, structure)
				if err != nil || !ok {
					b.Fatalf("geometry %s/%s: ok=%v err=%v", r.tool, structure, ok, err)
				}
				masks, err := fault.Generate(fault.GeneratorSpec{
					Structure: structure, Entries: entries, BitsPerEntry: bits,
					MaxCycle: r.golden.Cycles, Model: fault.ModelTransient, Count: 10, Seed: 41,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Golden deliberately nil: each iteration's matrix pays
				// one memoized golden run per row.
				specs = append(specs, core.CampaignSpec{
					Tool: r.tool, Benchmark: r.bench, Structure: structure,
					Masks: masks, Factory: r.factory, TimeoutFactor: 3,
				})
			}
		}
		return specs
	}
	for _, workers := range []int{1, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			var runs int
			var cycles uint64
			for i := 0; i < b.N; i++ {
				results, err := core.RunMatrix(buildSpecs(), core.MatrixOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					runs += len(res.Records)
					for _, rec := range res.Records {
						cycles += rec.Cycles
					}
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(runs)/sec, "runs/s")
				b.ReportMetric(float64(cycles)/1e6/sec, "Mcycles/s")
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}

// BenchmarkMatrixSchedulerTelemetry is BenchmarkMatrixScheduler with the
// telemetry layer fully attached — collector, golden source, and a
// buffering trace sink — pinning the observability overhead against the
// bare scheduler (acceptance: within 2%).
func BenchmarkMatrixSchedulerTelemetry(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	cache := core.NewGoldenCache()
	golden, err := cache.Golden(sims.GeFINX86, "qsort", factory)
	if err != nil {
		b.Fatal(err)
	}
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, structure := range []string{"rf.int", "lsq.data"} {
			entries, bits, ok, err := cache.Geometry(sims.GeFINX86, "qsort", factory, structure)
			if err != nil || !ok {
				b.Fatalf("geometry %s: ok=%v err=%v", structure, ok, err)
			}
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: structure, Entries: entries, BitsPerEntry: bits,
				MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 10, Seed: 41,
			})
			if err != nil {
				b.Fatal(err)
			}
			specs = append(specs, core.CampaignSpec{
				Tool: sims.GeFINX86, Benchmark: "qsort", Structure: structure,
				Masks: masks, Factory: factory, TimeoutFactor: 3,
			})
		}
		return specs
	}
	for _, mode := range []struct {
		name string
		tel  bool
	}{{"bare", false}, {"collector+trace", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.MatrixOptions{Workers: 8}
				if mode.tel {
					collector := telemetry.New()
					collector.AddSink(telemetry.NewTraceSink())
					opts.Telemetry = collector
				}
				if _, err := core.RunMatrix(buildSpecs(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDataArrayAblation measures the §III.C cost of modelling the
// cache data arrays in the MARSS-like simulator: fault-free runs with
// the arrays modelled (MaFIN) versus the tags-only original MARSS. The
// paper reports ~40% throughput degradation from the data-array
// extension.
func BenchmarkDataArrayAblation(b *testing.B) {
	w, err := workload.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	img, err := w.Image(asm.TargetCISC)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		model bool
	}{{"with-data-arrays", true}, {"tags-only", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := marss.DefaultConfig()
			cfg.ModelDataArrays = mode.model
			for i := 0; i < b.N; i++ {
				cpu := marss.New(cfg, img)
				res := cpu.Run(1 << 62)
				if res.Status != core.RunCompleted {
					b.Fatalf("run: %v", res.Status)
				}
			}
		})
	}
}

// BenchmarkPruneAblation measures golden-run liveness pruning on the
// cache campaigns it targets: a transient-fault L1D + L2 data-array
// matrix at a fixed seed, once fully simulated and once with the pruner
// settling dead and replicated masks at plan time. The pruned variant
// pays the profiled fault-free replay up front; the acceptance bar is a
// >=2x wall-clock speedup (results/BENCH_prune.json records the
// measured pair).
func BenchmarkPruneAblation(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	cache := core.NewGoldenCache()
	golden, err := cache.Golden(sims.GeFINX86, "qsort", factory)
	if err != nil {
		b.Fatal(err)
	}
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, structure := range []string{"l1d.data", "l2.data"} {
			entries, bits, ok, err := cache.Geometry(sims.GeFINX86, "qsort", factory, structure)
			if err != nil || !ok {
				b.Fatalf("geometry %s: ok=%v err=%v", structure, ok, err)
			}
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: structure, Entries: entries, BitsPerEntry: bits,
				MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 40, Seed: 17,
			})
			if err != nil {
				b.Fatal(err)
			}
			specs = append(specs, core.CampaignSpec{
				Tool: sims.GeFINX86, Benchmark: "qsort", Structure: structure,
				Masks: masks, Factory: factory, TimeoutFactor: 3, Golden: &golden,
			})
		}
		return specs
	}
	for _, mode := range []struct {
		name  string
		prune bool
	}{{"unpruned", false}, {"pruned", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var runs, prunedRuns int
			for i := 0; i < b.N; i++ {
				results, err := core.RunMatrix(buildSpecs(), core.MatrixOptions{
					Workers: 4, Prune: mode.prune,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					runs += len(res.Records)
					for _, rec := range res.Records {
						if rec.Status == core.RunPruned.String() {
							prunedRuns++
						}
					}
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(runs)/sec, "runs/s")
			}
			if runs > 0 {
				b.ReportMetric(100*float64(prunedRuns)/float64(runs), "pruned%")
			}
		})
	}
}

// BenchmarkCheckpointLadder measures the checkpoint ladder against the
// legacy single earliest-fault checkpoint on a campaign whose faults
// are spread over the whole run: the single checkpoint sits at the
// earliest fault (helping nobody else), while the ladder gives every
// run the highest rung below its own first fault.
func BenchmarkCheckpointLadder(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	golden, err := core.Golden(factory)
	if err != nil {
		b.Fatal(err)
	}
	sim := factory()
	arr := sim.Structures()["rf.int"]
	masks, err := fault.Generate(fault.GeneratorSpec{
		Structure: "rf.int", Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
		MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 30, Seed: 23,
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := func() []core.CampaignSpec {
		return []core.CampaignSpec{{
			Tool: sims.GeFINX86, Benchmark: "qsort", Structure: "rf.int",
			Masks: masks, Factory: factory, TimeoutFactor: 3, Golden: &golden,
			UseCheckpoint: true,
		}}
	}
	for _, mode := range []struct {
		name   string
		ladder int
	}{{"single-checkpoint", 0}, {"ladder-6", 6}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.RunMatrix(spec(), core.MatrixOptions{
					Workers: 4, CheckpointLadder: mode.ladder,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGoldenProfileOverhead pins the cost of the liveness profiler
// on the fault-free run it rides: the same golden run plain and with
// every targeted cache array profiled. The profiled sub-benchmark also
// reports its slowdown against a plain baseline measured in the same
// invocation; the acceptance bar is <5% overhead.
func BenchmarkGoldenProfileOverhead(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	run := func(profiled bool) uint64 {
		sim := factory()
		if profiled {
			cs := sim.(core.CycleSource)
			for _, name := range []string{"l1d.data", "l2.data"} {
				sim.Structures()[name].StartProfile(cs.CurrentCycle)
			}
		}
		res := sim.Run(1 << 62)
		if res.Status != core.RunCompleted {
			b.Fatalf("golden run: %v", res.Status)
		}
		return res.Cycles
	}
	baseline := func(n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			run(false)
		}
		return time.Since(start)
	}
	for _, mode := range []struct {
		name     string
		profiled bool
	}{{"plain", false}, {"profiled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cycles += run(mode.profiled)
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(cycles)/1e6/sec, "Mcycles/s")
			}
			if mode.profiled {
				elapsed := b.Elapsed()
				b.StopTimer()
				plain := baseline(b.N)
				if plain > 0 {
					b.ReportMetric(100*(float64(elapsed)/float64(plain)-1), "overhead%")
				}
			}
		})
	}
}

// BenchmarkDetailWindow measures detail-window simulation against the
// PR 3 prune+ladder baseline on the campaigns windowing targets:
// register-file and L1D transients remapped onto the live-entry
// population (the -live-only sampling), so the liveness pruner cannot
// settle most of them at plan time and the two modes differ on real
// simulated runs. The baseline simulates rung-to-outcome
// cycle-accurately; the windowed mode runs functionally everywhere
// outside a ~3k-cycle detail window around the fault. The acceptance
// bar is a >=5x runs/s speedup over the baseline mode and a >=2x
// speedup of the windowed mode itself over the reference functional
// tier (-ff-rungs -1 -no-decode-cache); the reference is measured as
// interleaved untimed iterations of the same matrix so slow machine
// drift cancels out of the ratio (results/BENCH_window.json records the
// measured set).
func BenchmarkDetailWindow(b *testing.B) {
	buildSpecs, _ := windowedCampaign(b)
	run := func(window, reference bool) uint64 {
		var runs uint64
		opt := core.MatrixOptions{
			Workers: 4, Telemetry: telemetry.New(),
			Prune: true, CheckpointLadder: 3,
		}
		if window {
			opt.DetailWindow = true
			opt.WindowPre = 2000
			opt.WindowPost = 1000
		}
		if reference {
			opt.FFRungs = -1
			opt.NoDecodeCache = true
		}
		results, err := core.RunMatrix(buildSpecs(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			runs += uint64(len(res.Records))
		}
		return runs
	}
	for _, mode := range []struct {
		name   string
		window bool
	}{{"prune+ladder", false}, {"window+prune+ladder", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var runs uint64
			var snap telemetry.Snapshot
			var refTime time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				col := telemetry.New()
				opt := core.MatrixOptions{
					Workers: 4, Telemetry: col,
					Prune: true, CheckpointLadder: 3,
				}
				if mode.window {
					opt.DetailWindow = true
					opt.WindowPre = 2000
					opt.WindowPost = 1000
				}
				results, err := core.RunMatrix(buildSpecs(), opt)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					runs += uint64(len(res.Records))
				}
				snap = col.Snapshot()
				if mode.window {
					// The interleaved reference pair: the same windowed
					// matrix with both functional-tier optimisations
					// disabled, untimed.
					b.StopTimer()
					start := time.Now()
					run(true, true)
					refTime += time.Since(start)
					b.StartTimer()
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(runs)/sec, "runs/s")
			}
			if mode.window {
				b.ReportMetric(100*snap.FastTierShare, "fast%")
				if b.Elapsed() > 0 {
					b.ReportMetric(float64(refTime)/float64(b.Elapsed()), "speedup")
				}
			}
		})
	}
}

// windowedCampaign builds the detail-window benchmark matrix:
// register-file and L1D transients remapped onto the live-entry
// population so the liveness pruner cannot settle most of them at plan
// time. The builder regenerates fresh specs per iteration; the returned
// cache memoizes the golden run, live entries, ladder, and the
// divergence commit signature across iterations.
func windowedCampaign(b *testing.B) (func() []core.CampaignSpec, *core.GoldenCache) {
	b.Helper()
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	factory, err := sims.Factory(sims.GeFINX86, w)
	if err != nil {
		b.Fatal(err)
	}
	cache := core.NewGoldenCache()
	golden, err := cache.Golden(sims.GeFINX86, "qsort", factory)
	if err != nil {
		b.Fatal(err)
	}
	sim := factory()
	buildSpecs := func() []core.CampaignSpec {
		var specs []core.CampaignSpec
		for _, structure := range []string{"rf.int", "l1d.data"} {
			arr := sim.Structures()[structure]
			masks, err := fault.Generate(fault.GeneratorSpec{
				Structure: structure, Entries: arr.Entries(), BitsPerEntry: arr.BitsPerEntry(),
				MaxCycle: golden.Cycles, Model: fault.ModelTransient, Count: 60, Seed: 29,
			})
			if err != nil {
				b.Fatal(err)
			}
			live, err := cache.LiveEntries(sims.GeFINX86, "qsort", factory, structure)
			if err != nil || len(live) == 0 {
				b.Fatalf("live entries for %s: %d (%v)", structure, len(live), err)
			}
			for mi := range masks {
				for si := range masks[mi].Sites {
					masks[mi].Sites[si].Entry = live[masks[mi].Sites[si].Entry%len(live)]
				}
			}
			specs = append(specs, core.CampaignSpec{
				Tool: sims.GeFINX86, Benchmark: "qsort", Structure: structure,
				Masks: masks, Factory: factory, TimeoutFactor: 3, Golden: &golden,
				UseCheckpoint: true,
			})
		}
		return specs
	}
	return buildSpecs, cache
}

// BenchmarkDetailWindowDivergence measures the cost of divergence
// provenance recording on top of the windowed campaign: the same matrix
// as BenchmarkDetailWindow's windowed mode runs with and without a
// divergence sink attached. The probe folds each committed PC into a
// 64-instruction FNV block hash and stops comparing at the first
// mismatching block, so the acceptance bar is <5% overhead
// (results/BENCH_divergence.json records the measured pair).
func BenchmarkDetailWindowDivergence(b *testing.B) {
	buildSpecs, cache := windowedCampaign(b)
	run := func(div bool) uint64 {
		var runs uint64
		opt := core.MatrixOptions{
			Workers: 4, Telemetry: telemetry.New(), Golden: cache,
			Prune: true, CheckpointLadder: 3,
			DetailWindow: true, WindowPre: 2000, WindowPost: 1000,
		}
		var sink *divergence.Sink
		if div {
			sink = divergence.NewSink()
			opt.Divergence = sink
		}
		results, err := core.RunMatrix(buildSpecs(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			runs += uint64(len(res.Records))
		}
		if div {
			if err := sink.Flush(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		return runs
	}
	// Warm the memoizer (golden run, live entries, ladder, commit
	// signature) outside any timed region so neither mode pays it.
	run(true)
	b.Run("window", func(b *testing.B) {
		var runs uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runs += run(false)
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(runs)/sec, "runs/s")
		}
	})
	// The overhead pair is interleaved — one recorded iteration, one
	// plain iteration, alternating — so slow machine drift hits both
	// sides equally instead of skewing whichever phase ran second.
	b.Run("window+divergence", func(b *testing.B) {
		var runs uint64
		var plain time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runs += run(true)
			b.StopTimer()
			start := time.Now()
			run(false)
			plain += time.Since(start)
			b.StartTimer()
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(runs)/sec, "runs/s")
		}
		if plain > 0 {
			b.ReportMetric(100*(float64(b.Elapsed())/float64(plain)-1), "overhead%")
		}
	})
}

// BenchmarkInterpDispatch measures the functional interpreter's raw
// dispatch rate (steps/s over a full fault-free qsort run, both ISAs)
// with the predecoded-instruction cache on and off — the micro view of
// the interpreter tax the cache eliminates
// (results/BENCH_interp.json records the measured pairs).
func BenchmarkInterpDispatch(b *testing.B) {
	w, err := workload.ByName("qsort")
	if err != nil {
		b.Fatal(err)
	}
	for _, tgt := range []asm.Target{asm.TargetCISC, asm.TargetRISC} {
		img, err := w.Image(tgt)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name  string
			cache bool
		}{{"cache", true}, {"nocache", false}} {
			b.Run(tgt.String()+"/"+mode.name, func(b *testing.B) {
				var steps uint64
				for i := 0; i < b.N; i++ {
					m := interp.New(img)
					if !mode.cache {
						m.DisableDecodeCache()
					}
					r := m.Continue(uint64(1) << 62)
					if r.Outcome != interp.Completed {
						b.Fatalf("functional run ended %v", r.Outcome)
					}
					steps += r.Steps
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(steps)/sec, "steps/s")
				}
			})
		}
	}
}

// BenchmarkWindowEntryLadder measures what the functional fast-forward
// rung ladder is worth on the windowed campaign of BenchmarkDetailWindow:
// the same matrix with every window entry fast-forwarding from boot
// (-ff-rungs < 0) vs. resuming from the memoized rung ladder. The
// golden memoizer is shared, so the pair differs only in the entry
// trajectory (results/BENCH_interp.json records the measured pair).
func BenchmarkWindowEntryLadder(b *testing.B) {
	buildSpecs, cache := windowedCampaign(b)
	run := func(ffRungs int) uint64 {
		var runs uint64
		opt := core.MatrixOptions{
			Workers: 4, Telemetry: telemetry.New(), Golden: cache,
			Prune: true, CheckpointLadder: 3,
			DetailWindow: true, WindowPre: 2000, WindowPost: 1000,
			FFRungs: ffRungs,
		}
		results, err := core.RunMatrix(buildSpecs(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			runs += uint64(len(res.Records))
		}
		return runs
	}
	// Warm the memoizer (golden run, live entries, ladder) outside any
	// timed region so neither mode pays it.
	run(-1)
	for _, mode := range []struct {
		name  string
		rungs int
	}{{"from-boot", -1}, {"ladder", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var runs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runs += run(mode.rungs)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(runs)/sec, "runs/s")
			}
		})
	}
}
